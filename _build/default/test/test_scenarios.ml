(* Network-fault scenarios driven through a raw cluster: partitions, healing
   and catch-up.  These exercise behaviours the standard experiment harness
   deliberately does not expose. *)

module Cluster = Test_support.Cluster

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_partitioned_minority_catches_up () =
  (* One of four nodes is cut off; the remaining three form a quorum and
     keep committing.  After healing, gossip (certificates in every message,
     deferred commits) brings the straggler back level. *)
  let c = Cluster.create ~n:4 () in
  Cluster.start c;
  Cluster.isolate c [ 3 ];
  Cluster.run c ~until:1_000.;
  let majority = Cluster.committed c 0 in
  check "majority progressed during the partition" true (majority > 10);
  check_int "straggler saw nothing" 0 (Cluster.committed c 3);
  Cluster.heal c;
  Cluster.run c ~until:2_500.;
  let behind = Cluster.committed c 0 - Cluster.committed c 3 in
  check "straggler caught up after healing" true (behind >= 0 && behind < 10);
  check "straggler reached the current view" true
    (Cluster.current_view c 0 - Cluster.current_view c 3 < 3)

let test_no_quorum_no_progress () =
  (* Two of four isolated: neither side has 2f+1 = 3 nodes; nobody commits
     anything while the partition lasts — and safety trivially holds. *)
  let c = Cluster.create ~n:4 () in
  Cluster.start c;
  Cluster.isolate c [ 2; 3 ];
  Cluster.run c ~until:2_000.;
  check_int "side A stalls" 0 (Cluster.committed c 0);
  check_int "side B stalls" 0 (Cluster.committed c 2);
  Cluster.heal c;
  Cluster.run c ~until:4_000.;
  check "progress resumes after healing" true (Cluster.committed c 0 > 5)

let test_leader_partition_rotates_past () =
  (* Isolating a node only while it leads: views it leads time out, other
     views proceed; its blocks are simply absent, no safety impact. *)
  let c = Cluster.create ~n:4 () in
  Cluster.start c;
  Cluster.isolate c [ 1 ];
  Cluster.run c ~until:1_500.;
  let before = Cluster.committed c 0 in
  check "three nodes keep the chain alive" true (before > 5);
  Cluster.heal c;
  Cluster.run c ~until:3_000.;
  check "node 1 rejoins and contributes" true (Cluster.committed c 1 > before / 2)

let test_repeated_partitions_stay_safe () =
  (* Flapping connectivity: isolate a different node every 500 ms.  The
     commit logs raise Safety_violation on any fork; surviving the run is
     the assertion. *)
  let c = Cluster.create ~n:4 () in
  Cluster.start c;
  List.iter
    (fun (victim, until) ->
      Cluster.isolate c [ victim ];
      Cluster.run c ~until;
      Cluster.heal c;
      Cluster.run c ~until:(until +. 200.))
    [ (0, 500.); (1, 1_200.); (2, 1_900.); (3, 2_600.) ];
  Cluster.run c ~until:4_000.;
  check "chain still grows after the flapping" true (Cluster.committed c 0 > 10);
  (* All nodes should be close to each other again. *)
  let counts = List.init 4 (Cluster.committed c) in
  let mx = List.fold_left max 0 counts and mn = List.fold_left min max_int counts in
  check "nodes converge" true (mx - mn < 15)

let test_commit_moonshot_partition () =
  (* Same catch-up story with the pre-commit path enabled. *)
  let c = Cluster.create ~precommit:true ~n:4 () in
  Cluster.start c;
  Cluster.isolate c [ 3 ];
  Cluster.run c ~until:1_000.;
  Cluster.heal c;
  Cluster.run c ~until:2_500.;
  check "commit moonshot straggler catches up" true
    (Cluster.committed c 0 - Cluster.committed c 3 < 10)


let test_crash_restart_rejoins () =
  (* Crash node 2 mid-run, restart it from its WAL: it resumes from its
     recorded view, syncs missing blocks and keeps committing.  Safety is
     enforced by every commit log. *)
  let c = Cluster.create ~n:4 () in
  Cluster.start c;
  Cluster.run c ~until:800.;
  let before = Cluster.committed c 2 in
  check "progress before the crash" true (before > 5);
  Cluster.crash c 2;
  Cluster.run c ~until:1_600.;
  Cluster.restart c 2;
  Cluster.run c ~until:3_000.;
  check "restarted node catches back up" true
    (Cluster.committed c 0 - Cluster.committed c 2 < 10);
  check "restarted node is in the present" true
    (Cluster.current_view c 0 - Cluster.current_view c 2 < 3)

let test_crash_restart_many_times () =
  let c = Cluster.create ~precommit:true ~n:4 () in
  Cluster.start c;
  List.iter
    (fun (victim, at) ->
      Cluster.run c ~until:at;
      Cluster.crash c victim;
      Cluster.run c ~until:(at +. 300.);
      Cluster.restart c victim)
    [ (0, 400.); (1, 900.); (2, 1_400.); (3, 1_900.) ];
  Cluster.run c ~until:3_500.;
  check "chain survives rolling restarts" true (Cluster.committed c 0 > 20)

let () =
  Alcotest.run "scenarios"
    [
      ( "partitions",
        [
          Alcotest.test_case "minority catches up" `Quick
            test_partitioned_minority_catches_up;
          Alcotest.test_case "no quorum, no progress" `Quick test_no_quorum_no_progress;
          Alcotest.test_case "leader partition" `Quick test_leader_partition_rotates_past;
          Alcotest.test_case "flapping links" `Quick test_repeated_partitions_stay_safe;
          Alcotest.test_case "commit moonshot" `Quick test_commit_moonshot_partition;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "rejoin after restart" `Quick test_crash_restart_rejoins;
          Alcotest.test_case "rolling restarts" `Quick test_crash_restart_many_times;
        ] );
    ]
