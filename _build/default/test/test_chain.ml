open Bft_types
open Bft_chain
module B = Test_support.Builders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Block store ------------------------------------------------------------ *)

let test_store_has_genesis () =
  let s = Block_store.create () in
  check "genesis present" true (Block_store.mem s Block.genesis.Block.hash);
  check_int "size 1" 1 (Block_store.size s)

let test_store_insert_idempotent () =
  let s = Block_store.create () in
  let b = B.block ~view:1 ~parent:Block.genesis () in
  check "first insert new" true (Block_store.insert s b);
  check "second insert not new" false (Block_store.insert s b);
  check_int "size 2" 2 (Block_store.size s)

let test_store_parent_children () =
  let s = Block_store.create () in
  let b1 = B.block ~view:1 ~parent:Block.genesis () in
  let b2a = B.block ~view:2 ~parent:b1 () in
  let b2b = B.block ~view:3 ~parent:b1 () in
  List.iter (fun b -> ignore (Block_store.insert s b)) [ b1; b2a; b2b ];
  check "parent resolves" true (Block_store.parent s b2a = Some b1);
  check "genesis has no parent" true (Block_store.parent s Block.genesis = None);
  let kids = Block_store.children s b1.Block.hash in
  check_int "two children" 2 (List.length kids);
  check "children are the forks" true
    (List.for_all (fun (c : Block.t) -> Block.equal c b2a || Block.equal c b2b) kids)

let test_store_ancestry () =
  let s = Block_store.create () in
  let chain = B.chain 5 in
  List.iter (fun b -> ignore (Block_store.insert s b)) chain;
  let b1 = List.nth chain 0 and b5 = List.nth chain 4 in
  check "b1 ancestor of b5" true
    (Block_store.is_ancestor s ~ancestor:b1 ~of_:b5 = `Yes);
  check "b5 not ancestor of b1" true
    (Block_store.is_ancestor s ~ancestor:b5 ~of_:b1 = `No);
  check "self ancestor" true (Block_store.is_ancestor s ~ancestor:b5 ~of_:b5 = `Yes);
  check "genesis ancestor of all" true
    (Block_store.is_ancestor s ~ancestor:Block.genesis ~of_:b5 = `Yes)

let test_store_ancestry_fork () =
  let s = Block_store.create () in
  let b1 = B.block ~view:1 ~parent:Block.genesis () in
  let b2a = B.block ~view:2 ~parent:b1 () in
  let b2b = B.block ~view:3 ~parent:b1 () in
  let b3a = B.block ~view:4 ~parent:b2a () in
  List.iter (fun b -> ignore (Block_store.insert s b)) [ b1; b2a; b2b; b3a ];
  check "cousin not ancestor" true
    (Block_store.is_ancestor s ~ancestor:b2b ~of_:b3a = `No);
  check "fork point is ancestor of both" true
    (Block_store.is_ancestor s ~ancestor:b1 ~of_:b2b = `Yes)

let test_store_unknown_gap () =
  let s = Block_store.create () in
  let chain = B.chain 3 in
  (* Insert only the tip: its parents are missing. *)
  ignore (Block_store.insert s (List.nth chain 2));
  check "gap reported as unknown" true
    (Block_store.is_ancestor s ~ancestor:Block.genesis ~of_:(List.nth chain 2)
    = `Unknown);
  check "chain_to fails on gap" true
    (Block_store.chain_to s (List.nth chain 2) = None)

let test_store_descendants () =
  let s = Block_store.create () in
  let b1 = B.block ~view:1 ~parent:Block.genesis () in
  let b2 = B.block ~view:2 ~parent:b1 () in
  let b3 = B.block ~view:3 ~parent:b2 () in
  List.iter (fun b -> ignore (Block_store.insert s b)) [ b1; b2; b3 ];
  check_int "descendants of b1" 2 (List.length (Block_store.descendants s b1.Block.hash));
  check_int "descendants of genesis" 3
    (List.length (Block_store.descendants s Block.genesis.Block.hash));
  check_int "tip has none" 0 (List.length (Block_store.descendants s b3.Block.hash))

let test_store_chain_to () =
  let s = Block_store.create () in
  let chain = B.chain 4 in
  List.iter (fun b -> ignore (Block_store.insert s b)) chain;
  match Block_store.chain_to s (List.nth chain 3) with
  | None -> Alcotest.fail "expected full chain"
  | Some full ->
      check_int "genesis + 4" 5 (List.length full);
      check "starts at genesis" true (Block.is_genesis (List.hd full));
      check "heights ascend" true
        (List.mapi (fun i (b : Block.t) -> b.Block.height = i) full
        |> List.for_all Fun.id)

(* --- Commit log ----------------------------------------------------------------- *)

let store_with blocks =
  let s = Block_store.create () in
  List.iter (fun b -> ignore (Block_store.insert s b)) blocks;
  s

let test_log_initial () =
  let log = Commit_log.create () in
  check_int "empty" 0 (Commit_log.length log);
  check "last is genesis" true (Block.is_genesis (Commit_log.last log));
  check "genesis committed" true
    (Commit_log.is_committed log Block.genesis.Block.hash)

let test_log_commit_chain_order () =
  let chain = B.chain 3 in
  let s = store_with chain in
  let order = ref [] in
  let log = Commit_log.create ~on_commit:(fun b -> order := b :: !order) () in
  (* Committing the tip commits all ancestors first. *)
  let newly = Commit_log.commit log s (List.nth chain 2) in
  check_int "three new" 3 (List.length newly);
  check "callback ran oldest-first" true
    (List.rev !order |> List.map (fun (b : Block.t) -> b.Block.height)
    = [ 1; 2; 3 ]);
  check_int "length 3" 3 (Commit_log.length log)

let test_log_commit_idempotent () =
  let chain = B.chain 2 in
  let s = store_with chain in
  let log = Commit_log.create () in
  ignore (Commit_log.commit log s (List.nth chain 1));
  check "recommit returns nothing" true
    (Commit_log.commit log s (List.nth chain 0) = []);
  check_int "length unchanged" 2 (Commit_log.length log)

let test_log_extension () =
  let chain = B.chain 4 in
  let s = store_with chain in
  let log = Commit_log.create () in
  ignore (Commit_log.commit log s (List.nth chain 1));
  let newly = Commit_log.commit log s (List.nth chain 3) in
  check_int "only the suffix commits" 2 (List.length newly);
  check "at_height view" true
    (Commit_log.at_height log 3 = Some (List.nth chain 2))

let test_log_conflict_same_height () =
  let b1 = B.block ~view:1 ~parent:Block.genesis () in
  let b1' = B.block ~view:2 ~parent:Block.genesis () in
  let s = store_with [ b1; b1' ] in
  let log = Commit_log.create () in
  ignore (Commit_log.commit log s b1);
  check "conflicting commit raises" true
    (try
       ignore (Commit_log.commit log s b1');
       false
     with Commit_log.Safety_violation _ -> true)

let test_log_fork_below_frontier () =
  let b1 = B.block ~view:1 ~parent:Block.genesis () in
  let b2 = B.block ~view:2 ~parent:b1 () in
  let b1' = B.block ~view:3 ~parent:Block.genesis () in
  let b2' = B.block ~view:4 ~parent:b1' () in
  let s = store_with [ b1; b2; b1'; b2' ] in
  let log = Commit_log.create () in
  ignore (Commit_log.commit log s b2);
  check "committing a forked descendant raises" true
    (try
       ignore (Commit_log.commit log s b2');
       false
     with Commit_log.Safety_violation _ -> true)

let test_log_missing_ancestor () =
  let chain = B.chain 3 in
  let s = store_with [ List.nth chain 2 ] in
  let log = Commit_log.create () in
  check "missing ancestor is invalid-arg" true
    (try
       ignore (Commit_log.commit log s (List.nth chain 2));
       false
     with Invalid_argument _ -> true)

let test_log_to_list () =
  let chain = B.chain 2 in
  let s = store_with chain in
  let log = Commit_log.create () in
  ignore (Commit_log.commit log s (List.nth chain 1));
  check_int "list includes genesis" 3 (List.length (Commit_log.to_list log))


let test_log_long_chain_growth () =
  (* Exercise the commit log's capacity doubling across hundreds of
     heights. *)
  let chain = B.chain 300 in
  let s = store_with chain in
  let log = Commit_log.create () in
  let newly = Commit_log.commit log s (List.nth chain 299) in
  check_int "all 300 commit" 300 (List.length newly);
  check_int "length" 300 (Commit_log.length log);
  check "tip right" true (Block.equal (Commit_log.last log) (List.nth chain 299));
  check "random access works" true
    (Commit_log.at_height log 150 = Some (List.nth chain 149))

let test_log_at_height_bounds () =
  let log = Commit_log.create () in
  check "negative height" true (Commit_log.at_height log (-1) = None);
  check "beyond frontier" true (Commit_log.at_height log 1 = None);
  check "genesis at zero" true (Commit_log.at_height log 0 = Some Block.genesis)

let () =
  Alcotest.run "chain"
    [
      ( "block-store",
        [
          Alcotest.test_case "genesis present" `Quick test_store_has_genesis;
          Alcotest.test_case "insert idempotent" `Quick test_store_insert_idempotent;
          Alcotest.test_case "parent/children" `Quick test_store_parent_children;
          Alcotest.test_case "ancestry" `Quick test_store_ancestry;
          Alcotest.test_case "ancestry across forks" `Quick test_store_ancestry_fork;
          Alcotest.test_case "unknown on gaps" `Quick test_store_unknown_gap;
          Alcotest.test_case "descendants" `Quick test_store_descendants;
          Alcotest.test_case "chain_to" `Quick test_store_chain_to;
        ] );
      ( "commit-log",
        [
          Alcotest.test_case "initial state" `Quick test_log_initial;
          Alcotest.test_case "chain-order commits" `Quick test_log_commit_chain_order;
          Alcotest.test_case "idempotent" `Quick test_log_commit_idempotent;
          Alcotest.test_case "extension" `Quick test_log_extension;
          Alcotest.test_case "conflict detected" `Quick test_log_conflict_same_height;
          Alcotest.test_case "fork below frontier" `Quick test_log_fork_below_frontier;
          Alcotest.test_case "missing ancestor" `Quick test_log_missing_ancestor;
          Alcotest.test_case "to_list" `Quick test_log_to_list;
          Alcotest.test_case "long chain growth" `Quick test_log_long_chain_growth;
          Alcotest.test_case "at_height bounds" `Quick test_log_at_height_bounds;
        ] );
    ]
