open Bft_types
open Moonshot
module B = Test_support.Builders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A canonical chain for the vote-rule tests: views 1..5 on top of genesis. *)
let chain = B.chain 5
let blk v = List.nth chain (v - 1)
let cert_of v = B.cert (blk v)

(* --- Cert ------------------------------------------------------------------ *)

let test_cert_well_formed () =
  let c = cert_of 2 in
  check_int "view" 2 c.Cert.view;
  check "certifies child" true (Cert.certifies_parent_of c (blk 3));
  check "does not certify grandchild" false (Cert.certifies_parent_of c (blk 4))

let test_cert_view_mismatch_rejected () =
  check "cert view must match block view" true
    (try
       ignore (Cert.make ~kind:Vote_kind.Normal ~view:9 ~block:(blk 1) ~signers:3);
       false
     with Invalid_argument _ -> true)

let test_cert_rank_by_view_only () =
  let opt2 = B.cert ~kind:Vote_kind.Opt (blk 2) in
  let fb2 = B.cert ~kind:Vote_kind.Fallback (blk 2) in
  let n3 = cert_of 3 in
  check "same view same rank regardless of kind" true
    (Cert.rank_compare opt2 fb2 = 0);
  check "higher view higher rank" true (Cert.rank_gt n3 opt2);
  check "rank_geq reflexive" true (Cert.rank_geq opt2 opt2)

let test_cert_identity () =
  let a = B.cert ~kind:Vote_kind.Opt (blk 2) in
  let b = B.cert ~kind:Vote_kind.Opt ~signers:4 (blk 2) in
  let c = B.cert ~kind:Vote_kind.Normal (blk 2) in
  check "identity ignores signer count" true (Cert.equal_id a b);
  check "identity distinguishes kind" false (Cert.equal_id a c)

let test_cert_genesis () =
  check_int "genesis cert view 0" 0 Cert.genesis.Cert.view;
  check "genesis cert certifies view-1 blocks" true
    (Cert.certifies_parent_of Cert.genesis (blk 1))

let test_cert_wire_size_linear () =
  let s10 = Cert.wire_size (B.cert ~signers:10 (blk 1)) in
  let s20 = Cert.wire_size (B.cert ~signers:20 (blk 1)) in
  check_int "linear in signers" (10 * (Wire_size.signature + Wire_size.node_id))
    (s20 - s10)

(* --- Tc -------------------------------------------------------------------- *)

let test_tc_high_cert_view () =
  check_int "none is -1" (-1) (Tc.high_cert_view (B.tc 3));
  check_int "some is its view" 2 (Tc.high_cert_view (B.tc ~high_cert:(cert_of 2) 3))

let test_tc_validation () =
  check "needs signers" true
    (try
       ignore (Tc.make ~view:1 ~high_cert:None ~signers:0);
       false
     with Invalid_argument _ -> true);
  check "needs positive view" true
    (try
       ignore (Tc.make ~view:0 ~high_cert:None ~signers:3);
       false
     with Invalid_argument _ -> true)

let test_tc_wire_size_linear_not_quadratic () =
  (* The paper's implementation keeps TCs linear: per-timeout rank claims
     plus one full certificate. *)
  let tc_small = B.tc ~high_cert:(B.cert ~signers:67 (blk 1)) ~signers:67 2 in
  let tc_large = B.tc ~high_cert:(B.cert ~signers:134 (blk 1)) ~signers:134 2 in
  let s1 = Tc.wire_size tc_small and s2 = Tc.wire_size tc_large in
  (* Doubling the quorum should roughly double the size (linear), not
     quadruple it (quadratic). *)
  check "roughly linear growth" true
    (float_of_int s2 /. float_of_int s1 < 2.5)

(* --- Message sizes ------------------------------------------------------------ *)

let test_votes_are_small () =
  let v = Message.Vote { kind = Vote_kind.Opt; block = blk 1 } in
  check "vote is small" true (Message.size v < 300)

let test_proposal_carries_payload () =
  let payload = Payload.make ~id:7 ~size_bytes:1_800_000 in
  let big =
    Block.create ~parent:Block.genesis ~view:1 ~proposer:0 ~payload
  in
  let m = Message.Opt_propose { block = big } in
  check "proposal dominated by payload" true (Message.size m > 1_800_000);
  let empty = Message.Opt_propose { block = blk 1 } in
  check "empty proposal small" true (Message.size empty < 300)

let test_fb_proposal_biggest () =
  let cert = B.cert ~signers:67 (blk 1) in
  let tc = B.tc ~high_cert:cert ~signers:67 1 in
  let fb = Message.Fb_propose { block = blk 2; cert; tc } in
  let normal = Message.Propose { block = blk 2; cert } in
  check "fb-proposal bigger than normal" true (Message.size fb > Message.size normal)

let test_timeout_size_by_protocol () =
  let simple = Message.Timeout { view = 3; lock = None } in
  let pipelined = Message.Timeout { view = 3; lock = Some (cert_of 2) } in
  check "pipelined timeout carries lock" true
    (Message.size pipelined > Message.size simple)

(* --- Safety rules: Simple Moonshot --------------------------------------------- *)

let test_simple_opt_vote_happy () =
  check "votes with matching lock" true
    (Safety_rules.simple_opt_vote ~lock:(cert_of 2) ~view:3 ~voted:false
       ~timed_out:false ~block:(blk 3))

let test_simple_opt_vote_rejections () =
  let vote ?(lock = cert_of 2) ?(voted = false) ?(timed_out = false)
      ?(block = blk 3) () =
    Safety_rules.simple_opt_vote ~lock ~view:3 ~voted ~timed_out ~block
  in
  check "already voted" false (vote ~voted:true ());
  check "timed out" false (vote ~timed_out:true ());
  check "stale lock" false (vote ~lock:(cert_of 1) ());
  check "lock for other branch" false
    (vote ~lock:(B.cert (B.block ~view:2 ~payload_id:9 ~parent:(blk 1) ())) ());
  check "block for wrong view" false (vote ~block:(blk 4) ())

let test_simple_normal_vote_happy () =
  check "cert at lock rank accepted" true
    (Safety_rules.simple_normal_vote ~lock:(cert_of 2) ~view:3 ~voted:false
       ~timed_out:false ~block:(blk 3) ~cert:(cert_of 2));
  (* Certificate ranking strictly above the lock also accepted: the node is
     behind. *)
  check "higher-ranked cert accepted" true
    (Safety_rules.simple_normal_vote ~lock:(cert_of 1) ~view:3 ~voted:false
       ~timed_out:false ~block:(blk 3) ~cert:(cert_of 2))

let test_simple_normal_vote_rejections () =
  let vote ?(lock = cert_of 2) ?(voted = false) ?(timed_out = false)
      ?(block = blk 3) ?(cert = cert_of 2) () =
    Safety_rules.simple_normal_vote ~lock ~view:3 ~voted ~timed_out ~block ~cert
  in
  check "cert below lock" false (vote ~lock:(cert_of 2) ~cert:(cert_of 1) ());
  check "block does not extend cert" false (vote ~block:(blk 4) ());
  check "already voted" false (vote ~voted:true ());
  check "timed out" false (vote ~timed_out:true ())

(* --- Safety rules: Pipelined Moonshot -------------------------------------------- *)

let test_pipelined_opt_vote_happy () =
  check "clean state votes" true
    (Safety_rules.pipelined_opt_vote ~lock:(cert_of 2) ~view:3 ~timeout_view:0
       ~voted_opt:None ~voted_main:false ~block:(blk 3));
  (* A timeout for an old view does not block optimistic voting. *)
  check "old timeout ok" true
    (Safety_rules.pipelined_opt_vote ~lock:(cert_of 2) ~view:3 ~timeout_view:1
       ~voted_opt:None ~voted_main:false ~block:(blk 3))

let test_pipelined_opt_vote_rejections () =
  let vote ?(lock = cert_of 2) ?(timeout_view = 0) ?(voted_opt = None)
      ?(voted_main = false) ?(block = blk 3) () =
    Safety_rules.pipelined_opt_vote ~lock ~view:3 ~timeout_view ~voted_opt
      ~voted_main ~block
  in
  (* Figure 3 condition (i): timeout_view < v - 1.  A timeout for v-1 means
     the node has given up on certifying v-1's block. *)
  check "timeout for previous view blocks opt vote" false (vote ~timeout_view:2 ());
  check "timeout for current view blocks opt vote" false (vote ~timeout_view:3 ());
  check "already opt voted" false (vote ~voted_opt:(Some (blk 3)) ());
  check "already main voted" false (vote ~voted_main:true ());
  check "lock not on parent" false (vote ~lock:(cert_of 1) ())

let test_pipelined_normal_vote_happy () =
  check "fresh normal vote" true
    (Safety_rules.pipelined_normal_vote ~view:3 ~timeout_view:0 ~voted_opt:None
       ~voted_main:false ~block:(blk 3) ~cert:(cert_of 2));
  (* MUST also normal-vote after an optimistic vote for the same block
     (Section IV-A), so both certificate kinds can complete. *)
  check "same-block opt vote does not block" true
    (Safety_rules.pipelined_normal_vote ~view:3 ~timeout_view:0
       ~voted_opt:(Some (blk 3)) ~voted_main:false ~block:(blk 3)
       ~cert:(cert_of 2));
  (* A timeout for v-1 blocks opt votes but not normal votes. *)
  check "timeout for v-1 still allows normal vote" true
    (Safety_rules.pipelined_normal_vote ~view:3 ~timeout_view:2 ~voted_opt:None
       ~voted_main:false ~block:(blk 3) ~cert:(cert_of 2))

let test_pipelined_normal_vote_rejections () =
  let equivocating = B.block ~view:3 ~payload_id:99 ~parent:(blk 2) () in
  let vote ?(timeout_view = 0) ?(voted_opt = None) ?(voted_main = false)
      ?(block = blk 3) ?(cert = cert_of 2) () =
    Safety_rules.pipelined_normal_vote ~view:3 ~timeout_view ~voted_opt
      ~voted_main ~block ~cert
  in
  check "timed out of current view" false (vote ~timeout_view:3 ());
  check "opt voted for equivocating block" false
    (vote ~voted_opt:(Some equivocating) ());
  check "already main voted" false (vote ~voted_main:true ());
  check "cert not for v-1" false (vote ~cert:(cert_of 1) ());
  check "does not extend cert" false (vote ~block:(blk 4) ())

let test_pipelined_fb_vote_happy () =
  let tc = B.tc ~high_cert:(cert_of 2) 2 in
  check "fallback extending the TC's high cert" true
    (Safety_rules.pipelined_fb_vote ~view:3 ~timeout_view:2 ~voted_main:false
       ~block:(blk 3) ~cert:(cert_of 2) ~tc);
  (* The voter's own lock is NOT consulted: a fallback for an older branch
     is accepted when justified by the TC (Section IV-B). *)
  let tc_low = B.tc ~high_cert:(cert_of 1) 2 in
  let fork = B.block ~view:3 ~payload_id:5 ~parent:(blk 1) () in
  check "fallback may extend below own lock" true
    (Safety_rules.pipelined_fb_vote ~view:3 ~timeout_view:0 ~voted_main:false
       ~block:fork ~cert:(cert_of 1) ~tc:tc_low);
  (* Allowed even after an opt vote for an equivocating block. *)
  check "fallback after equivocating opt vote" true
    (Safety_rules.pipelined_fb_vote ~view:3 ~timeout_view:0 ~voted_main:false
       ~block:(blk 3) ~cert:(cert_of 2) ~tc)

let test_pipelined_fb_vote_rejections () =
  let tc = B.tc ~high_cert:(cert_of 2) 2 in
  let vote ?(timeout_view = 0) ?(voted_main = false) ?(block = blk 3)
      ?(cert = cert_of 2) ?(tc = tc) () =
    Safety_rules.pipelined_fb_vote ~view:3 ~timeout_view ~voted_main ~block
      ~cert ~tc
  in
  check "timed out of current view" false (vote ~timeout_view:3 ());
  check "already main voted" false (vote ~voted_main:true ());
  check "tc for wrong view" false (vote ~tc:(B.tc ~high_cert:(cert_of 2) 1) ());
  (* The justifying certificate must rank at least as high as the TC's. *)
  let fork = B.block ~view:3 ~payload_id:5 ~parent:(blk 1) () in
  check "cert below TC's high cert" false (vote ~block:fork ~cert:(cert_of 1) ());
  check "does not extend cert" false (vote ~block:(blk 4) ())

(* --- Safety rules: Commit Moonshot ------------------------------------------------ *)

let test_precommit_rules () =
  check "direct: in an older view" true
    (Safety_rules.direct_precommit ~view:3 ~timeout_view:0 ~cert_view:3);
  check "direct: cert from the future" true
    (Safety_rules.direct_precommit ~view:3 ~timeout_view:0 ~cert_view:5);
  check "direct: already past the cert's view" false
    (Safety_rules.direct_precommit ~view:4 ~timeout_view:0 ~cert_view:3);
  check "direct: timed out of the cert's view" false
    (Safety_rules.direct_precommit ~view:3 ~timeout_view:3 ~cert_view:3);
  check "indirect: needs a commit-voted descendant" false
    (Safety_rules.indirect_precommit ~timeout_view:0 ~cert_view:3
       ~voted_descendant:false);
  check "indirect: fires with descendant" true
    (Safety_rules.indirect_precommit ~timeout_view:0 ~cert_view:3
       ~voted_descendant:true);
  check "indirect: blocked by timeout" false
    (Safety_rules.indirect_precommit ~timeout_view:3 ~cert_view:3
       ~voted_descendant:true)

(* --- Proposal validity -------------------------------------------------------------- *)

let test_valid_proposal_block () =
  let leader_of view = (view - 1) mod 4 in
  check "right leader right view" true
    (Safety_rules.valid_proposal_block ~leader_of ~view:3 (blk 3));
  check "wrong view" false
    (Safety_rules.valid_proposal_block ~leader_of ~view:4 (blk 3));
  let impostor = B.block ~proposer:1 ~view:3 ~parent:(blk 2) () in
  check "wrong proposer" false
    (Safety_rules.valid_proposal_block ~leader_of ~view:3 impostor)


let test_cpu_costs () =
  let open Message in
  let vote = Vote { kind = Vote_kind.Normal; block = blk 1 } in
  check "vote costs one verification" true
    (cpu_cost vote = Bft_types.Cpu_model.sig_verify_ms);
  let gossip = Cert_gossip (B.cert ~signers:67 (blk 1)) in
  check "gossiped cert is a cache hit, far below re-verification" true
    (cpu_cost gossip < Bft_types.Cpu_model.verify_signatures 67 /. 100.);
  let heavy =
    Block.create ~parent:Block.genesis ~view:1 ~proposer:0
      ~payload:(Payload.make ~id:1 ~size_bytes:1_000_000)
  in
  check "payload hashing dominates large proposals" true
    (cpu_cost (Opt_propose { block = heavy }) > 0.9);
  let fb =
    Fb_propose
      { block = blk 2; cert = B.cert ~signers:67 (blk 1);
        tc = B.tc ~signers:67 2 }
  in
  check "fallback proposals verify the fresh TC" true
    (cpu_cost fb > Bft_types.Cpu_model.verify_signatures 100)

(* --- Theory (Table I) ---------------------------------------------------------------- *)

let test_table1_shape () =
  check_int "eleven rows" 11 (List.length Theory.table1);
  check "moonshot rows present" true
    (List.exists (fun r -> r.Theory.name = "Commit Moonshot") Theory.table1)

let test_moonshot_rows () =
  check "all moonshot rows have period d" true
    (List.for_all
       (fun r -> r.Theory.min_block_period = "d")
       [ Theory.simple_moonshot; Theory.pipelined_moonshot; Theory.commit_moonshot ]);
  check "all moonshot rows commit in 3d" true
    (List.for_all
       (fun r -> r.Theory.min_commit_latency = "3d")
       [ Theory.simple_moonshot; Theory.pipelined_moonshot; Theory.commit_moonshot ]);
  check "all moonshot rows reorg resilient" true
    (List.for_all
       (fun r -> r.Theory.reorg_resilient)
       [ Theory.simple_moonshot; Theory.pipelined_moonshot; Theory.commit_moonshot ]);
  check "jolteon is 5d / 2d / not resilient" true
    (Theory.jolteon.Theory.min_commit_latency = "5d"
    && Theory.jolteon.Theory.min_block_period = "2d"
    && not Theory.jolteon.Theory.reorg_resilient)

let test_hops_constants () =
  check_int "moonshot commit hops" 3 Theory.moonshot_commit_hops;
  check_int "moonshot period hops" 1 Theory.moonshot_block_period_hops;
  check_int "jolteon commit hops" 5 Theory.jolteon_commit_hops;
  check_int "jolteon period hops" 2 Theory.jolteon_block_period_hops

let () =
  Alcotest.run "moonshot-core"
    [
      ( "cert",
        [
          Alcotest.test_case "well formed" `Quick test_cert_well_formed;
          Alcotest.test_case "view mismatch" `Quick test_cert_view_mismatch_rejected;
          Alcotest.test_case "rank by view" `Quick test_cert_rank_by_view_only;
          Alcotest.test_case "identity" `Quick test_cert_identity;
          Alcotest.test_case "genesis" `Quick test_cert_genesis;
          Alcotest.test_case "wire size" `Quick test_cert_wire_size_linear;
        ] );
      ( "tc",
        [
          Alcotest.test_case "high cert view" `Quick test_tc_high_cert_view;
          Alcotest.test_case "validation" `Quick test_tc_validation;
          Alcotest.test_case "linear wire size" `Quick
            test_tc_wire_size_linear_not_quadratic;
        ] );
      ( "message",
        [
          Alcotest.test_case "votes small" `Quick test_votes_are_small;
          Alcotest.test_case "payload dominates proposals" `Quick
            test_proposal_carries_payload;
          Alcotest.test_case "fb-proposal largest" `Quick test_fb_proposal_biggest;
          Alcotest.test_case "timeout sizes" `Quick test_timeout_size_by_protocol;
        ] );
      ( "simple-rules",
        [
          Alcotest.test_case "opt vote happy" `Quick test_simple_opt_vote_happy;
          Alcotest.test_case "opt vote rejections" `Quick test_simple_opt_vote_rejections;
          Alcotest.test_case "normal vote happy" `Quick test_simple_normal_vote_happy;
          Alcotest.test_case "normal vote rejections" `Quick
            test_simple_normal_vote_rejections;
        ] );
      ( "pipelined-rules",
        [
          Alcotest.test_case "opt vote happy" `Quick test_pipelined_opt_vote_happy;
          Alcotest.test_case "opt vote rejections" `Quick
            test_pipelined_opt_vote_rejections;
          Alcotest.test_case "normal vote happy" `Quick test_pipelined_normal_vote_happy;
          Alcotest.test_case "normal vote rejections" `Quick
            test_pipelined_normal_vote_rejections;
          Alcotest.test_case "fallback vote happy" `Quick test_pipelined_fb_vote_happy;
          Alcotest.test_case "fallback vote rejections" `Quick
            test_pipelined_fb_vote_rejections;
        ] );
      ( "commit-rules",
        [ Alcotest.test_case "pre-commit" `Quick test_precommit_rules ] );
      ("cpu", [ Alcotest.test_case "amortized costs" `Quick test_cpu_costs ]);
      ( "proposal-validity",
        [ Alcotest.test_case "leader and view" `Quick test_valid_proposal_block ] );
      ( "theory",
        [
          Alcotest.test_case "table shape" `Quick test_table1_shape;
          Alcotest.test_case "moonshot rows" `Quick test_moonshot_rows;
          Alcotest.test_case "hop constants" `Quick test_hops_constants;
        ] );
    ]
