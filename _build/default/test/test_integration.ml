(* End-to-end simulation tests: whole networks of nodes running each
   protocol, checking the paper's headline properties — commit latencies of
   3 delta vs 5 delta, block periods of delta vs 2 delta, reorg resilience,
   safety under equivocation and recovery after GST.

   The uniform zero-jitter network makes hop counts exact: every message
   takes [hop] ms, so steady-state latencies are integer multiples of it. *)

open Bft_runtime
module Schedules = Bft_workload.Schedules

let check = Alcotest.(check bool)

let hop = 10.

(* A small deterministic network: n nodes, every message exactly [hop] ms,
   no bandwidth limit, delta = 50 ms. *)
let base_config protocol ~n =
  {
    (Config.default protocol ~n) with
    Config.latency = Config.Uniform { base = hop; jitter = 0. };
    bandwidth_bps = None;
    delta_ms = 50.;
    duration_ms = 2_000.;
    seed = 7;
  }

let run = Bft_runtime.Harness.run

let committed r = r.Harness.metrics.Metrics.committed_blocks
let avg_latency r = r.Harness.metrics.Metrics.avg_latency_ms

(* --- Happy path ------------------------------------------------------------- *)

let test_all_protocols_commit () =
  List.iter
    (fun p ->
      let r = run (base_config p ~n:4) in
      check (Protocol_kind.name p ^ " commits") true (committed r > 10))
    Protocol_kind.all

let test_moonshot_latency_is_3_hops () =
  List.iter
    (fun p ->
      let r = run (base_config p ~n:4) in
      let lat = avg_latency r in
      check
        (Protocol_kind.name p ^ " commit latency near 3 hops")
        true
        (lat > 2.5 *. hop && lat < 3.7 *. hop))
    [
      Protocol_kind.Simple_moonshot;
      Protocol_kind.Pipelined_moonshot;
      Protocol_kind.Commit_moonshot;
    ]

let test_jolteon_latency_is_5_hops () =
  let r = run (base_config Protocol_kind.Jolteon ~n:4) in
  let lat = avg_latency r in
  check "jolteon commit latency near 5 hops" true
    (lat > 4.5 *. hop && lat < 5.7 *. hop)

let test_block_period_delta_vs_2delta () =
  let pm = run (base_config Protocol_kind.Pipelined_moonshot ~n:4) in
  let j = run (base_config Protocol_kind.Jolteon ~n:4) in
  (* Moonshot proposes every hop, Jolteon every two hops. *)
  let ratio = float_of_int (committed pm) /. float_of_int (committed j) in
  check "moonshot commits ~2x jolteon's blocks" true (ratio > 1.7 && ratio < 2.3);
  check "moonshot period near delta" true
    (committed pm > int_of_float (2_000. /. hop *. 0.85))

let test_all_honest_nodes_commit_equally () =
  let r = run (base_config Protocol_kind.Pipelined_moonshot ~n:7) in
  let per_node = r.Harness.metrics.Metrics.per_node_committed in
  let top = Array.fold_left max 0 per_node in
  check "every node commits within a few blocks of the leader count" true
    (Array.for_all (fun c -> top - c < 10) per_node)

let test_bigger_network_still_works () =
  let r = run (base_config Protocol_kind.Commit_moonshot ~n:13) in
  check "13 nodes commit" true (committed r > 10)


let test_hotstuff_latency_is_7_hops () =
  let r = run (base_config Protocol_kind.Hotstuff ~n:4) in
  let lat = avg_latency r in
  check "hotstuff commit latency near 7 hops" true
    (lat > 6.5 *. hop && lat < 7.7 *. hop)


(* --- Communication complexity ------------------------------------------------ *)

let test_message_complexity () =
  let pm = run (base_config Protocol_kind.Pipelined_moonshot ~n:10) in
  let j = run (base_config Protocol_kind.Jolteon ~n:10) in
  let per_block_pm =
    float_of_int pm.Harness.messages_sent /. float_of_int (committed pm)
  in
  let per_block_j =
    float_of_int j.Harness.messages_sent /. float_of_int (committed j)
  in
  (* Quadratic vs linear steady state: at n = 10 moonshot sends an order of
     magnitude more messages per block. *)
  check "moonshot quadratic vs jolteon linear" true
    (per_block_pm /. per_block_j > 5.)

(* --- Failures ------------------------------------------------------------------ *)

let with_failures protocol ~n ~f' ~schedule =
  {
    (base_config protocol ~n) with
    Config.f_actual = f';
    schedule;
    duration_ms = 4_000.;
  }

let test_progress_with_silent_leader () =
  List.iter
    (fun p ->
      let r = run (with_failures p ~n:4 ~f':1 ~schedule:Schedules.Round_robin) in
      check (Protocol_kind.name p ^ " survives a silent leader") true
        (committed r > 5))
    Protocol_kind.paper;
  (* HotStuff's three-chain commit needs three consecutive certified views;
     with n = 4 and every fourth aggregator silent that window never forms —
     a real property of aggregator-based three-chain protocols.  With n = 7
     the six-view honest runs suffice. *)
  let hs4 = run (with_failures Protocol_kind.Hotstuff ~n:4 ~f':1
                   ~schedule:Schedules.Round_robin) in
  check "hotstuff stalls at n=4 with a rotating silent aggregator" true
    (committed hs4 = 0);
  let hs7 = run (with_failures Protocol_kind.Hotstuff ~n:7 ~f':1
                   ~schedule:Schedules.Round_robin) in
  check "hotstuff recovers with longer honest runs" true (committed hs7 > 5)

let test_simple_weakest_moonshot_under_failures () =
  (* Paper, Section VI-B: Simple Moonshot's 5-Delta view timer and 2-Delta
     post-failure wait cost it throughput relative to Pipelined. *)
  let sm =
    run (with_failures Protocol_kind.Simple_moonshot ~n:7 ~f':2
           ~schedule:Schedules.Worst_jolteon)
  in
  let pm =
    run (with_failures Protocol_kind.Pipelined_moonshot ~n:7 ~f':2
           ~schedule:Schedules.Worst_jolteon)
  in
  check "SM commits fewer than PM under failures" true
    (committed sm < committed pm);
  check "SM still reorg resilient (keeps committing)" true (committed sm > 5)

let test_reorg_resilience_under_wj () =
  (* Under the WJ schedule Jolteon loses the blocks whose votes flow to a
     Byzantine aggregator; Moonshot's vote multicast keeps them. *)
  let pm =
    run (with_failures Protocol_kind.Pipelined_moonshot ~n:4 ~f':1
           ~schedule:Schedules.Worst_jolteon)
  in
  let j =
    run (with_failures Protocol_kind.Jolteon ~n:4 ~f':1
           ~schedule:Schedules.Worst_jolteon)
  in
  check "moonshot commits more than jolteon under WJ" true
    (committed pm > committed j);
  check "moonshot still makes steady progress" true (committed pm > 10)

let test_commit_moonshot_fast_under_wm () =
  (* Under WM the pipelined protocols commit honest blocks only after long
     delays (no consecutive honest pair); Commit Moonshot's explicit
     pre-commit keeps latency near the happy path. *)
  let cm =
    run (with_failures Protocol_kind.Commit_moonshot ~n:7 ~f':2
           ~schedule:Schedules.Worst_moonshot)
  in
  let pm =
    run (with_failures Protocol_kind.Pipelined_moonshot ~n:7 ~f':2
           ~schedule:Schedules.Worst_moonshot)
  in
  check "commit moonshot commits under WM" true (committed cm > 5);
  check "commit moonshot latency well below pipelined's" true
    (avg_latency cm < avg_latency pm /. 2.)

let test_silent_f_max () =
  (* The maximum tolerated number of silent nodes: f' = f = (n-1)/3. *)
  let r =
    run (with_failures Protocol_kind.Commit_moonshot ~n:7 ~f':2
           ~schedule:Schedules.Best_case)
  in
  check "progress with f' = f silent nodes" true (committed r > 5)

(* --- Byzantine equivocation ------------------------------------------------------ *)

let test_equivocating_leader_is_safe () =
  List.iter
    (fun p ->
      let cfg =
        { (base_config p ~n:4) with Config.equivocators = [ 0 ]; duration_ms = 4_000. }
      in
      (* Metrics raise Safety_violation if any two nodes commit conflicting
         blocks; reaching here means safety held. *)
      let r = run cfg in
      check (Protocol_kind.name p ^ " liveness despite equivocator") true
        (committed r > 5))
    Protocol_kind.all

let test_equivocating_leader_uncertified () =
  (* With n = 4 the equivocator splits honest votes 2/2: neither conflicting
     block can gather a quorum, so no block proposed by node 0 in a view it
     equivocated should ever commit in conflict — stronger: runs are safe
     (checked) and other leaders' blocks dominate the chain. *)
  let cfg =
    {
      (base_config Protocol_kind.Pipelined_moonshot ~n:4) with
      Config.equivocators = [ 0 ];
      duration_ms = 4_000.;
    }
  in
  let r = run cfg in
  check "chain keeps growing around the equivocator" true (committed r > 5)


(* --- Richer Byzantine behaviours --------------------------------------------------- *)

let test_vote_withholders_tolerated () =
  (* f vote-withholding nodes: certificates still form from the remaining
     2f+1 voters; commits continue at full pace. *)
  let cfg =
    { (base_config Protocol_kind.Pipelined_moonshot ~n:7) with
      Config.byzantine = [ (0, Byzantine.Withhold_votes); (1, Byzantine.Withhold_votes) ] }
  in
  let r = run cfg in
  check "progress with f withholders" true (committed r > 10)

let test_withholders_above_f_rejected () =
  let cfg =
    { (base_config Protocol_kind.Pipelined_moonshot ~n:7) with
      Config.byzantine =
        [ (0, Byzantine.Withhold_votes); (1, Byzantine.Withhold_votes);
          (2, Byzantine.Withhold_votes) ] }
  in
  check "threat model enforced" true
    (try ignore (run cfg); false with Invalid_argument _ -> true)

let test_delaying_node_is_safe () =
  (* One node lags all its messages by 4 hops: views it leads may time out,
     everything stays safe, overall progress continues. *)
  let cfg =
    { (base_config Protocol_kind.Commit_moonshot ~n:4) with
      Config.byzantine = [ (1, Byzantine.Delay_all (4. *. hop)) ];
      duration_ms = 4_000. }
  in
  let r = run cfg in
  check "progress with a lagging node" true (committed r > 10)

let test_mixed_adversary () =
  (* Equivocator + withholder (= f for n = 7), every protocol: safety is the
     harness check, liveness the assertion. *)
  List.iter
    (fun p ->
      let cfg =
        { (base_config p ~n:7) with
          Config.equivocators = [ 0 ];
          byzantine = [ (1, Byzantine.Withhold_votes) ];
          duration_ms = 4_000. }
      in
      let r = run cfg in
      check (Protocol_kind.name p ^ " survives a mixed adversary") true
        (committed r > 5))
    Protocol_kind.paper

(* --- Partial synchrony ------------------------------------------------------------ *)

let test_recovery_after_gst () =
  List.iter
    (fun p ->
      let cfg =
        {
          (base_config p ~n:4) with
          Config.gst_ms = 1_500.;
          pre_gst_extra_ms = 2_000.;
          duration_ms = 5_000.;
        }
      in
      let r = run cfg in
      (* The adversary scrambles delivery for 1.5 s; the protocol must both
         stay safe (checked by metrics) and commit plenty after GST. *)
      check (Protocol_kind.name p ^ " recovers after GST") true (committed r > 10))
    Protocol_kind.all

(* --- The beta vs rho separation (Section V) ----------------------------------------- *)

let test_commit_moonshot_wins_with_large_blocks () =
  (* Finite bandwidth + large payloads make proposals (beta) much slower
     than votes (rho).  Pipelined commit latency is 2 beta + rho; Commit
     Moonshot's is beta + 2 rho. *)
  let sized p =
    {
      (base_config p ~n:4) with
      Config.payload_bytes = 1_800_000;
      bandwidth_bps = Some 1e9;
      duration_ms = 10_000.;
      delta_ms = 200.;
    }
  in
  let pm = run (sized Protocol_kind.Pipelined_moonshot) in
  let cm = run (sized Protocol_kind.Commit_moonshot) in
  check "CM latency beats PM on large blocks" true
    (avg_latency cm < avg_latency pm *. 0.85)

let test_equal_sizes_equal_latency () =
  (* With empty payloads beta = rho and the pre-commit phase buys nothing:
     CM and PM latencies coincide. *)
  let pm = run (base_config Protocol_kind.Pipelined_moonshot ~n:4) in
  let cm = run (base_config Protocol_kind.Commit_moonshot ~n:4) in
  check "CM ~ PM with empty blocks" true
    (Float.abs (avg_latency cm -. avg_latency pm) < 0.5 *. hop)


(* --- Message duplication --------------------------------------------------------- *)

let test_duplication_is_harmless () =
  (* 30% of messages delivered twice: idempotent handlers must neither
     break safety (checked by the harness) nor change what commits. *)
  let base = base_config Protocol_kind.Commit_moonshot ~n:4 in
  let clean = run base in
  let noisy = run { base with Config.duplicate_prob = 0.3 } in
  check "same commits despite duplication" true
    (committed noisy = committed clean);
  check "duplication never certifies with fewer voters" true
    (avg_latency noisy >= avg_latency clean -. 0.001)

let test_duplication_all_protocols () =
  List.iter
    (fun p ->
      let r = run { (base_config p ~n:4) with Config.duplicate_prob = 0.5 } in
      check (Protocol_kind.name p ^ " progresses under duplication") true
        (committed r > 10))
    Protocol_kind.all

(* --- Determinism --------------------------------------------------------------------- *)

let test_runs_are_deterministic () =
  let cfg = base_config Protocol_kind.Commit_moonshot ~n:7 in
  let a = run cfg and b = run cfg in
  check "same committed count" true (committed a = committed b);
  check "same latency" true (avg_latency a = avg_latency b);
  check "same message count" true (a.Harness.messages_sent = b.Harness.messages_sent)

let test_seeds_change_runs () =
  let cfg =
    { (base_config Protocol_kind.Commit_moonshot ~n:7) with
      Config.latency = Config.Uniform { base = hop; jitter = 5. } }
  in
  let a = run cfg and b = run { cfg with Config.seed = 8 } in
  check "different seeds differ somewhere" true
    (a.Harness.bytes_sent <> b.Harness.bytes_sent || committed a <> committed b
    || avg_latency a <> avg_latency b)

(* --- Transfer rate accounting ---------------------------------------------------------- *)

let test_transfer_rate_consistent () =
  let cfg =
    { (base_config Protocol_kind.Commit_moonshot ~n:4) with
      Config.payload_bytes = 18_000 }
  in
  let r = run cfg in
  let m = r.Harness.metrics in
  let expected =
    float_of_int m.Metrics.committed_blocks *. 18_000. /. 2.0 (* seconds *)
  in
  check "transfer rate = blocks x payload / time" true
    (Float.abs (m.Metrics.transfer_rate_bps -. expected) < 1.)

let test_wan_run_commits () =
  (* The paper's WAN model end to end (table latencies + bandwidth). *)
  let cfg =
    { (Config.default Protocol_kind.Commit_moonshot ~n:10) with
      Config.duration_ms = 5_000.; payload_bytes = 1_800 }
  in
  let r = run cfg in
  check "WAN commits" true (committed r > 5);
  check "WAN latency plausibly 3 hops of ~140ms" true
    (avg_latency r > 200. && avg_latency r < 800.)

let () =
  Alcotest.run "integration"
    [
      ( "happy-path",
        [
          Alcotest.test_case "all protocols commit" `Quick test_all_protocols_commit;
          Alcotest.test_case "moonshot 3-hop latency" `Quick
            test_moonshot_latency_is_3_hops;
          Alcotest.test_case "jolteon 5-hop latency" `Quick test_jolteon_latency_is_5_hops;
          Alcotest.test_case "hotstuff 7-hop latency" `Quick test_hotstuff_latency_is_7_hops;
          Alcotest.test_case "block period" `Quick test_block_period_delta_vs_2delta;
          Alcotest.test_case "nodes commit equally" `Quick
            test_all_honest_nodes_commit_equally;
          Alcotest.test_case "n=13" `Quick test_bigger_network_still_works;
          Alcotest.test_case "message complexity" `Quick test_message_complexity;
        ] );
      ( "failures",
        [
          Alcotest.test_case "silent leader" `Quick test_progress_with_silent_leader;
          Alcotest.test_case "reorg resilience (WJ)" `Quick test_reorg_resilience_under_wj;
          Alcotest.test_case "commit moonshot under WM" `Quick
            test_commit_moonshot_fast_under_wm;
          Alcotest.test_case "f' = f silent" `Quick test_silent_f_max;
          Alcotest.test_case "SM weakest under failures" `Quick
            test_simple_weakest_moonshot_under_failures;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "equivocation safe" `Quick test_equivocating_leader_is_safe;
          Alcotest.test_case "equivocator contained" `Quick
            test_equivocating_leader_uncertified;
        ] );
      ( "byzantine-behaviours",
        [
          Alcotest.test_case "vote withholders" `Quick test_vote_withholders_tolerated;
          Alcotest.test_case "threat model cap" `Quick test_withholders_above_f_rejected;
          Alcotest.test_case "lagging node" `Quick test_delaying_node_is_safe;
          Alcotest.test_case "mixed adversary" `Quick test_mixed_adversary;
        ] );
      ( "partial-synchrony",
        [ Alcotest.test_case "recovery after GST" `Quick test_recovery_after_gst ] );
      ( "beta-vs-rho",
        [
          Alcotest.test_case "CM wins on large blocks" `Quick
            test_commit_moonshot_wins_with_large_blocks;
          Alcotest.test_case "tie on empty blocks" `Quick test_equal_sizes_equal_latency;
        ] );
      ( "duplication",
        [
          Alcotest.test_case "harmless" `Quick test_duplication_is_harmless;
          Alcotest.test_case "all protocols" `Quick test_duplication_all_protocols;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reproducible" `Quick test_runs_are_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_seeds_change_runs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "transfer rate" `Quick test_transfer_rate_consistent;
          Alcotest.test_case "WAN end-to-end" `Quick test_wan_run_commits;
        ] );
    ]
