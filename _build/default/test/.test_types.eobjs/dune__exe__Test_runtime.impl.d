test/test_runtime.ml: Alcotest Bft_chain Bft_runtime Bft_types Bft_workload Block Config Harness List Metrics Moonshot Payload Protocol_kind Test_support
