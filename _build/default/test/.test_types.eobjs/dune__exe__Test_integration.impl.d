test/test_integration.ml: Alcotest Array Bft_runtime Bft_workload Byzantine Config Float Harness List Metrics Protocol_kind
