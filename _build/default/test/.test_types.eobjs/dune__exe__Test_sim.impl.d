test/test_sim.ml: Alcotest Array Bft_sim Engine Event_queue Float Latency List Network Option Rng
