test/test_jolteon.mli:
