test/test_nodes.mli:
