test/test_node_core.mli:
