test/test_moonshot.ml: Alcotest Bft_types Block Cert List Message Moonshot Payload Safety_rules Tc Test_support Theory Vote_kind Wire_size
