test/test_app.ml: Alcotest Bft_app Bft_types Block Client Command Float Hash Kv_store Ledger List Payload Test_support
