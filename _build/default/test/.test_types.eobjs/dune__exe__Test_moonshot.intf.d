test/test_moonshot.mli:
