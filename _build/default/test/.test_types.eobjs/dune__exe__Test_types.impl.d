test/test_types.ml: Alcotest Bft_types Block Hash List Payload String Test_support Validator_set Wire_size
