test/test_nodes.ml: Alcotest Bft_types Block Cert List Message Moonshot Pipelined_node Simple_node Tc Test_support Vote_kind Wal
