test/test_crypto.ml: Accumulator Alcotest Bft_crypto Bft_types List Signature Signer_set
