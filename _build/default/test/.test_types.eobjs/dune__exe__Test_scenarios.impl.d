test/test_scenarios.ml: Alcotest List Test_support
