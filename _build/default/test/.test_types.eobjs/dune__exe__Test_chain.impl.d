test/test_chain.ml: Alcotest Bft_chain Bft_types Block Block_store Commit_log Fun List Test_support
