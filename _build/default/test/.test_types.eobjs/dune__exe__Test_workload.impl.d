test/test_workload.ml: Alcotest Array Bft_sim Bft_types Bft_workload Float List Payload_profile Regions Schedules
