test/test_jolteon.ml: Alcotest Bft_types Block Hotstuff Jolteon Jolteon_msg Jolteon_node List Moonshot Test_support
