test/test_stats.ml: Alcotest Bft_stats Buffer Descriptive Format List Outliers String Table
