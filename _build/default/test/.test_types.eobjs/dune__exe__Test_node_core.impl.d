test/test_node_core.ml: Alcotest Bft_types Block Cert Hash List Message Moonshot Node_core Sync Test_support Vote_kind
