open Bft_types
open Bft_runtime
module B = Test_support.Builders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Protocol_kind ------------------------------------------------------------- *)

let test_kind_names_roundtrip () =
  List.iter
    (fun p ->
      check (Protocol_kind.name p) true
        (Protocol_kind.of_name (Protocol_kind.name p) = Some p);
      check (Protocol_kind.short_name p) true
        (Protocol_kind.of_name (Protocol_kind.short_name p) = Some p))
    Protocol_kind.all;
  check "unknown rejected" true (Protocol_kind.of_name "pbft" = None)

(* --- Config ----------------------------------------------------------------------- *)

let test_config_defaults_valid () =
  Config.validate (Config.default Protocol_kind.Commit_moonshot ~n:100);
  Config.validate (Config.local Protocol_kind.Jolteon ~n:4);
  check "defaults validate" true true

let test_config_rejects_bad () =
  let base = Config.default Protocol_kind.Jolteon ~n:10 in
  let raises cfg =
    try Config.validate cfg; false with Invalid_argument _ -> true
  in
  check "f' too large" true (raises { base with Config.f_actual = 4 });
  check "negative payload" true (raises { base with Config.payload_bytes = -1 });
  check "zero duration" true (raises { base with Config.duration_ms = 0. });
  check "equivocator out of range" true (raises { base with Config.equivocators = [ 10 ] });
  check "equivocator in silent set" true
    (raises { base with Config.f_actual = 3; equivocators = [ 9 ] })

(* --- Metrics ----------------------------------------------------------------------- *)

let chain = B.chain 3
let blk v = List.nth chain (v - 1)

let test_metrics_quorum_commit () =
  let m = Metrics.create ~n:4 () in
  check_int "quorum is 3" 3 (Metrics.commit_quorum m);
  Metrics.on_propose m ~time:10. (blk 1);
  Metrics.on_commit m ~node:0 ~time:30. (blk 1);
  Metrics.on_commit m ~node:1 ~time:35. (blk 1);
  let partial = Metrics.finish m ~duration_ms:1000. in
  check_int "two commits below quorum" 0 partial.Metrics.committed_blocks;
  Metrics.on_commit m ~node:2 ~time:40. (blk 1);
  let r = Metrics.finish m ~duration_ms:1000. in
  check_int "third node completes the quorum" 1 r.Metrics.committed_blocks;
  check "latency is third commit minus creation" true
    (r.Metrics.latencies_ms = [ 30. ])

let test_metrics_dedup_per_node () =
  let m = Metrics.create ~n:4 () in
  Metrics.on_propose m ~time:0. (blk 1);
  Metrics.on_commit m ~node:0 ~time:10. (blk 1);
  Metrics.on_commit m ~node:0 ~time:11. (blk 1);
  Metrics.on_commit m ~node:0 ~time:12. (blk 1);
  let r = Metrics.finish m ~duration_ms:1000. in
  check_int "same node re-commits do not reach quorum" 0 r.Metrics.committed_blocks

let test_metrics_creation_deduped () =
  let m = Metrics.create ~n:4 () in
  Metrics.on_propose m ~time:5. (blk 1);
  Metrics.on_propose m ~time:50. (blk 1);
  List.iter (fun node -> Metrics.on_commit m ~node ~time:60. (blk 1)) [ 0; 1; 2 ];
  let r = Metrics.finish m ~duration_ms:1000. in
  check "first proposal timestamps creation" true (r.Metrics.latencies_ms = [ 55. ]);
  check_int "one proposed block" 1 r.Metrics.proposed_blocks

let test_metrics_global_safety () =
  let m = Metrics.create ~n:4 () in
  let a = blk 1 in
  let b = B.block ~view:2 ~parent:Block.genesis () in
  Metrics.on_commit m ~node:0 ~time:1. a;
  check "conflicting commit detected across nodes" true
    (try
       Metrics.on_commit m ~node:1 ~time:2. b;
       false
     with Bft_chain.Commit_log.Safety_violation _ -> true)

let test_metrics_transfer_rate () =
  let m = Metrics.create ~n:4 () in
  let heavy =
    Block.create ~parent:Block.genesis ~view:1 ~proposer:0
      ~payload:(Payload.make ~id:1 ~size_bytes:1000)
  in
  Metrics.on_propose m ~time:0. heavy;
  List.iter (fun node -> Metrics.on_commit m ~node ~time:10. heavy) [ 0; 1; 2 ];
  let r = Metrics.finish m ~duration_ms:2000. in
  check "bytes accounted" true (r.Metrics.payload_bytes_committed = 1000.);
  check "rate is bytes per second" true (r.Metrics.transfer_rate_bps = 500.)

(* --- Harness --------------------------------------------------------------------------- *)

let quick_cfg =
  {
    (Config.local Protocol_kind.Pipelined_moonshot ~n:4) with
    Config.duration_ms = 1_000.;
    latency = Config.Uniform { base = 10.; jitter = 0. };
  }

let test_run_seeds_and_summary () =
  let results = Harness.run_seeds quick_cfg ~seeds:[ 1; 2; 3 ] in
  check_int "three runs" 3 (List.length results);
  let s = Harness.summarize results in
  check "summary averages are positive" true
    (s.Harness.blocks_committed > 0. && s.Harness.avg_latency_ms > 0.)

let test_summarize_empty_rejected () =
  check "no results rejected" true
    (try ignore (Harness.summarize []); false with Invalid_argument _ -> true)

let test_run_protocol_explicit_module () =
  let r =
    Harness.run_protocol (module Moonshot.Simple_node.Protocol)
      { quick_cfg with Config.protocol = Protocol_kind.Simple_moonshot }
  in
  check "explicit module runs" true (r.Harness.metrics.Metrics.committed_blocks > 0)

let test_silent_nodes_send_nothing () =
  let cfg =
    { quick_cfg with Config.f_actual = 1; schedule = Bft_workload.Schedules.Best_case }
  in
  let all_honest = Harness.run { cfg with Config.f_actual = 0 } in
  let with_silent = Harness.run cfg in
  check "a silent node reduces traffic" true
    (with_silent.Harness.messages_sent < all_honest.Harness.messages_sent)


let test_chain_quality () =
  let m = Metrics.create ~n:4 () in
  (* Blocks at views 1..3 carry proposers 0, 1, 2 (round-robin builder);
     the third reaches too few nodes to count. *)
  let chain4 = B.chain 4 in
  let b1 = List.nth chain4 0 and b2 = List.nth chain4 1 and b3 = List.nth chain4 2 in
  List.iter (fun b -> Metrics.on_propose m ~time:0. b) [ b1; b2; b3 ];
  List.iter (fun node -> Metrics.on_commit m ~node ~time:10. b1) [ 0; 1; 2 ];
  List.iter (fun node -> Metrics.on_commit m ~node ~time:20. b2) [ 0; 1; 2 ];
  (* b3 committed by too few nodes. *)
  Metrics.on_commit m ~node:0 ~time:30. b3;
  let r = Metrics.finish m ~duration_ms:1000. in
  let q = Metrics.chain_quality r in
  (* Proposers come from the round-robin builder: view v block by (v-1) mod 4. *)
  check "proposer shares counted" true (q = [ (0, 1); (1, 1) ])

let test_model_cpu_increases_latency () =
  (* Zero-jitter network so the comparison is deterministic: each of the 40
     votes a node verifies per view costs sig_verify_ms of serial CPU. *)
  let base =
    {
      (Config.default Protocol_kind.Pipelined_moonshot ~n:40) with
      Config.duration_ms = 3_000.;
      latency = Config.Uniform { base = 20.; jitter = 0. };
      bandwidth_bps = None;
      delta_ms = 100.;
    }
  in
  let with_cpu = Harness.run base in
  let without = Harness.run { base with Config.model_cpu = false } in
  let lat r = r.Harness.metrics.Metrics.avg_latency_ms in
  check "cpu model adds measurable latency" true
    (lat with_cpu > lat without +. 1.)


let test_lso_protocol_happy_path () =
  (* The LSO ablation variant behaves identically to LCO when optimistic
     proposals always succeed (failure-free happy path). *)
  let lso =
    Harness.run_protocol (module Moonshot.Pipelined_node.Lso_protocol) quick_cfg
  in
  let lco =
    Harness.run_protocol (module Moonshot.Pipelined_node.Protocol) quick_cfg
  in
  check "LSO matches LCO absent failures" true
    (lso.Harness.metrics.Metrics.committed_blocks
    = lco.Harness.metrics.Metrics.committed_blocks);
  check "LSO sends fewer proposal bytes" true
    (lso.Harness.bytes_sent < lco.Harness.bytes_sent)

let () =
  Alcotest.run "runtime"
    [
      ("protocol-kind", [ Alcotest.test_case "names" `Quick test_kind_names_roundtrip ]);
      ( "config",
        [
          Alcotest.test_case "defaults valid" `Quick test_config_defaults_valid;
          Alcotest.test_case "rejects bad" `Quick test_config_rejects_bad;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quorum commit" `Quick test_metrics_quorum_commit;
          Alcotest.test_case "per-node dedup" `Quick test_metrics_dedup_per_node;
          Alcotest.test_case "creation dedup" `Quick test_metrics_creation_deduped;
          Alcotest.test_case "global safety" `Quick test_metrics_global_safety;
          Alcotest.test_case "transfer rate" `Quick test_metrics_transfer_rate;
          Alcotest.test_case "chain quality" `Quick test_chain_quality;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeds + summary" `Quick test_run_seeds_and_summary;
          Alcotest.test_case "empty summary" `Quick test_summarize_empty_rejected;
          Alcotest.test_case "explicit module" `Quick test_run_protocol_explicit_module;
          Alcotest.test_case "silent is silent" `Quick test_silent_nodes_send_nothing;
          Alcotest.test_case "cpu model effect" `Quick test_model_cpu_increases_latency;
          Alcotest.test_case "LSO happy path" `Quick test_lso_protocol_happy_path;
        ] );
    ]
