open Bft_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Regions ------------------------------------------------------------------ *)

let test_table_shape () =
  check_int "five regions" 5 Regions.count;
  check_int "five rows" 5 (Array.length Regions.table);
  Array.iter (fun row -> check_int "five columns" 5 (Array.length row)) Regions.table

let test_table_values () =
  let open Regions in
  check "diagonal is intra-region (small)" true
    (List.for_all (fun r -> latency_ms ~src:r ~dst:r < 7.) all);
  check "eu-north to ap-southeast is the worst link" true
    (latency_ms ~src:Ap_southeast_2 ~dst:Eu_north_1 = 272.31);
  check "roughly symmetric" true
    (List.for_all
       (fun src ->
         List.for_all
           (fun dst ->
             Float.abs (latency_ms ~src ~dst -. latency_ms ~src:dst ~dst:src)
             < 6.)
           all)
       all)

let test_round_robin_assignment () =
  check "node 0 in us-east" true (Regions.region_of_node 0 = Regions.Us_east_1);
  check "node 5 wraps" true (Regions.region_of_node 5 = Regions.Us_east_1);
  check "node 7 in eu" true (Regions.region_of_node 7 = Regions.Eu_north_1)

let test_latency_model_bounds () =
  let m = Regions.latency_model () in
  check "upper bound below the paper's 500ms delta" true
    (Bft_sim.Latency.upper_bound m < 500.)

(* --- Schedules -------------------------------------------------------------------- *)

let test_byzantine_ids_are_tail () =
  check "f'=2 of 7" true (Schedules.byzantine_ids ~n:7 ~f':2 = [ 5; 6 ]);
  check "f'=0 empty" true (Schedules.byzantine_ids ~n:7 ~f':0 = []);
  check "is_byzantine matches" true
    (Schedules.is_byzantine ~n:7 ~f':2 5
    && Schedules.is_byzantine ~n:7 ~f':2 6
    && not (Schedules.is_byzantine ~n:7 ~f':2 4))

let test_f_prime_bounds () =
  check "too many byzantine rejected" true
    (try ignore (Schedules.byzantine_ids ~n:7 ~f':3); false
     with Invalid_argument _ -> true)

let is_perm n arr =
  let sorted = List.sort compare (Array.to_list arr) in
  sorted = List.init n (fun i -> i)

let test_arrangements_are_permutations () =
  List.iter
    (fun s ->
      check (Schedules.name s ^ " is a permutation") true
        (is_perm 100 (Schedules.arrangement s ~n:100 ~f':33)))
    Schedules.all

let test_best_case_shape () =
  let arr = Schedules.arrangement Schedules.Best_case ~n:100 ~f':33 in
  let honest_prefix = Array.sub arr 0 67 in
  check "honest leaders first" true
    (Array.for_all (fun i -> not (Schedules.is_byzantine ~n:100 ~f':33 i)) honest_prefix);
  check "byzantine tail" true
    (Array.for_all
       (fun i -> Schedules.is_byzantine ~n:100 ~f':33 i)
       (Array.sub arr 67 33))

let test_wm_alternates () =
  let arr = Schedules.arrangement Schedules.Worst_moonshot ~n:100 ~f':33 in
  let byz i = Schedules.is_byzantine ~n:100 ~f':33 arr.(i) in
  (* First 2f' = 66 views alternate honest, byzantine. *)
  let ok = ref true in
  for i = 0 to 65 do
    let expected = i mod 2 = 1 in
    if byz i <> expected then ok := false
  done;
  check "h,b alternation for 2f' views" true !ok;
  let tail_ok = ref true in
  for i = 66 to 99 do
    if byz i then tail_ok := false
  done;
  check "honest tail" true !tail_ok

let test_wj_two_honest_then_byz () =
  let arr = Schedules.arrangement Schedules.Worst_jolteon ~n:100 ~f':33 in
  let byz i = Schedules.is_byzantine ~n:100 ~f':33 arr.(i) in
  let ok = ref true in
  for i = 0 to 98 do
    let expected = i mod 3 = 2 in
    if byz i <> expected then ok := false
  done;
  check "(h,h,b) repeated for 3f' views" true !ok;
  check "final leader honest" true (not (byz 99))

let test_leader_of_cycles () =
  let leader = Schedules.leader_of Schedules.Worst_jolteon ~n:100 ~f':33 in
  check "view 1 and view 101 coincide" true (leader 1 = leader 101);
  check "1-based indexing" true (leader 1 = (Schedules.arrangement Schedules.Worst_jolteon ~n:100 ~f':33).(0))


let test_schedule_name_roundtrip () =
  List.iter
    (fun s ->
      check (Schedules.name s) true (Schedules.of_name (Schedules.name s) = Some s))
    Schedules.all;
  check "unknown schedule" true (Schedules.of_name "zigzag" = None)

let test_schedules_degenerate_sizes () =
  (* n = 1 and f' = 0: every schedule is the identity. *)
  List.iter
    (fun s ->
      check (Schedules.name s ^ " n=1") true
        (Schedules.arrangement s ~n:1 ~f':0 = [| 0 |]))
    Schedules.all;
  (* Smallest fault-tolerant size. *)
  List.iter
    (fun s ->
      let arr = Schedules.arrangement s ~n:4 ~f':1 in
      check (Schedules.name s ^ " n=4 perm") true
        (List.sort compare (Array.to_list arr) = [ 0; 1; 2; 3 ]))
    Schedules.all

let test_wm_wj_differ () =
  check "WM and WJ interleave differently" true
    (Schedules.arrangement Schedules.Worst_moonshot ~n:100 ~f':33
    <> Schedules.arrangement Schedules.Worst_jolteon ~n:100 ~f':33)

(* --- Payload profiles -------------------------------------------------------------- *)

let test_payload_sizes_are_item_multiples () =
  check "happy-path sizes divisible by 180" true
    (List.for_all
       (fun s -> s mod Bft_types.Payload.item_size = 0)
       Payload_profile.happy_path_sizes);
  check "saturation extends happy path" true
    (List.for_all
       (fun s -> List.mem s Payload_profile.saturation_sizes)
       [ 0; 1_800; 18_000; 180_000; 1_800_000 ])

let test_labels () =
  check "empty" true (Payload_profile.label 0 = "empty");
  check "1.8kB" true (Payload_profile.label 1_800 = "1.8kB");
  check "18kB" true (Payload_profile.label 18_000 = "18kB");
  check "1.8MB" true (Payload_profile.label 1_800_000 = "1.8MB");
  check "9MB" true (Payload_profile.label 9_000_000 = "9MB")

let () =
  Alcotest.run "workload"
    [
      ( "regions",
        [
          Alcotest.test_case "table shape" `Quick test_table_shape;
          Alcotest.test_case "table values" `Quick test_table_values;
          Alcotest.test_case "round robin" `Quick test_round_robin_assignment;
          Alcotest.test_case "latency bounds" `Quick test_latency_model_bounds;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "byzantine tail" `Quick test_byzantine_ids_are_tail;
          Alcotest.test_case "f' bounds" `Quick test_f_prime_bounds;
          Alcotest.test_case "permutations" `Quick test_arrangements_are_permutations;
          Alcotest.test_case "B shape" `Quick test_best_case_shape;
          Alcotest.test_case "WM alternates" `Quick test_wm_alternates;
          Alcotest.test_case "WJ pattern" `Quick test_wj_two_honest_then_byz;
          Alcotest.test_case "leader cycles" `Quick test_leader_of_cycles;
          Alcotest.test_case "name roundtrip" `Quick test_schedule_name_roundtrip;
          Alcotest.test_case "degenerate sizes" `Quick test_schedules_degenerate_sizes;
          Alcotest.test_case "WM vs WJ" `Quick test_wm_wj_differ;
        ] );
      ( "payloads",
        [
          Alcotest.test_case "item multiples" `Quick test_payload_sizes_are_item_multiples;
          Alcotest.test_case "labels" `Quick test_labels;
        ] );
    ]
