(* Behavioural tests driving single Moonshot nodes through a mock
   environment: every protocol rule of Figures 1, 3 and 4 is exercised by
   hand-delivering messages and inspecting what the node emits. *)

open Bft_types
open Moonshot
module B = Test_support.Builders
module Mock = Test_support.Mock_env

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chain = B.chain 5
let blk v = List.nth chain (v - 1)
let cert_of ?kind v = B.cert ?kind (blk v)

(* n = 4, leader of view v is (v - 1) mod 4, quorum 3, weak quorum 2,
   delta 100 ms. *)
let delta = 100.

let make_pipelined ?(precommit = false) ~id () =
  let mock, env = Mock.create ~n:4 ~delta ~id () in
  let node = Pipelined_node.create ~precommit env in
  Mock.attach mock (fun ~src msg -> Pipelined_node.handle node ~src msg);
  Pipelined_node.start node;
  (mock, node)

let make_simple ~id () =
  let mock, env = Mock.create ~n:4 ~delta ~id () in
  let node = Simple_node.create env in
  Mock.attach mock (fun ~src msg -> Simple_node.handle node ~src msg);
  Simple_node.start node;
  (mock, node)

let votes mock =
  List.filter_map
    (function Message.Vote { kind; block } -> Some (kind, block) | _ -> None)
    (Mock.multicasts mock)

let timeouts mock =
  List.filter_map
    (function Message.Timeout { view; lock } -> Some (view, lock) | _ -> None)
    (Mock.multicasts mock)

let proposals mock =
  List.filter_map
    (function
      | Message.Propose { block; cert } -> Some (`Normal (block, cert))
      | Message.Opt_propose { block } -> Some (`Opt block)
      | Message.Fb_propose { block; cert; tc } -> Some (`Fb (block, cert, tc))
      | _ -> None)
    (Mock.multicasts mock)

let commit_votes mock =
  List.filter_map
    (function Message.Commit_vote { view; block } -> Some (view, block) | _ -> None)
    (Mock.multicasts mock)

(* Deliver a full quorum of votes for a block from the three peers of the
   node under test (plus its own if it voted); enough to certify. *)
let deliver_peer_votes node ~kind ~skip block =
  List.iter
    (fun src ->
      if src <> skip then Pipelined_node.handle node ~src (Message.Vote { kind; block }))
    [ 0; 1; 2; 3 ]

(* --- Pipelined Moonshot ----------------------------------------------------- *)

let test_p_leader_proposes_at_start () =
  let mock, node = make_pipelined ~id:0 () in
  check_int "in view 1" 1 (Pipelined_node.current_view node);
  match proposals mock with
  | [ `Normal (block, cert) ] ->
      check "extends genesis" true
        (Block.extends_hash block ~parent_hash:Block.genesis.Block.hash);
      check_int "justified by genesis cert" 0 cert.Cert.view;
      check_int "block for view 1" 1 block.Block.view
  | _ -> Alcotest.fail "leader of view 1 should normal-propose exactly once"

let test_p_nonleader_quiet_at_start () =
  let mock, _node = make_pipelined ~id:2 () in
  check_int "no messages at start" 0 (List.length (Mock.sent mock))

let test_p_votes_on_valid_proposal () =
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  match votes mock with
  | [ (Vote_kind.Normal, b) ] -> check "voted for proposal" true (Block.equal b (blk 1))
  | _ -> Alcotest.fail "expected exactly one normal vote"

let test_p_vote_then_opt_propose_as_next_leader () =
  (* Node 1 is the leader of view 2: upon voting in view 1 it must
     optimistically propose for view 2 without waiting for the certificate. *)
  let mock, node = make_pipelined ~id:1 () in
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  let opts =
    List.filter_map (function `Opt b -> Some b | _ -> None) (proposals mock)
  in
  (match opts with
  | [ b ] ->
      check_int "opt proposal for view 2" 2 b.Block.view;
      check "extends voted block" true
        (Block.extends_hash b ~parent_hash:(blk 1).Block.hash)
  | _ -> Alcotest.fail "expected exactly one optimistic proposal");
  check_int "still in view 1" 1 (Pipelined_node.current_view node)

let test_p_no_double_vote_on_redelivery () =
  let mock, node = make_pipelined ~id:2 () in
  let msg = Message.Propose { block = blk 1; cert = Cert.genesis } in
  Pipelined_node.handle node ~src:0 msg;
  Pipelined_node.handle node ~src:0 msg;
  check_int "one vote despite redelivery" 1 (List.length (votes mock))

let test_p_rejects_wrong_leader () =
  let mock, node = make_pipelined ~id:2 () in
  let impostor = B.block ~proposer:3 ~view:1 ~parent:Block.genesis () in
  Pipelined_node.handle node ~src:3
    (Message.Propose { block = impostor; cert = Cert.genesis });
  check_int "no vote for impostor" 0 (List.length (votes mock))

let test_p_cert_advances_view_and_gossips () =
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  check_int "entered view 2" 2 (Pipelined_node.current_view node);
  check "re-multicasts the certificate" true
    (List.exists
       (function Message.Cert_gossip c -> c.Cert.view = 1 | _ -> false)
       (Mock.multicasts mock));
  check_int "lock adopted" 1 (Pipelined_node.lock node).Cert.view

let test_p_opt_vote_when_locked_on_parent () =
  let mock, node = make_pipelined ~id:3 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  match votes mock with
  | [ (Vote_kind.Opt, b) ] -> check "opt vote for view-2 block" true (Block.equal b (blk 2))
  | _ -> Alcotest.fail "expected exactly one optimistic vote"

let test_p_opt_vote_buffered_until_lock () =
  (* The optimistic proposal typically arrives before the certificate that
     justifies entering its view; it must be buffered, then voted. *)
  let mock, node = make_pipelined ~id:3 () in
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  check_int "no vote yet" 0 (List.length (votes mock));
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  match votes mock with
  | [ (Vote_kind.Opt, b) ] -> check "voted after lock caught up" true (Block.equal b (blk 2))
  | _ -> Alcotest.fail "expected buffered opt proposal to be voted"

let test_p_opt_then_normal_same_block () =
  (* Section IV-A: a node that optimistically voted for B_k MUST also send
     the normal vote for B_k so both certificate kinds can form. *)
  let mock, node = make_pipelined ~id:3 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  Pipelined_node.handle node ~src:1
    (Message.Propose { block = blk 2; cert = cert_of 1 });
  let vs = votes mock in
  check_int "two votes" 2 (List.length vs);
  check "opt then normal, same block" true
    (match vs with
    | [ (Vote_kind.Opt, a); (Vote_kind.Normal, b) ] ->
        Block.equal a (blk 2) && Block.equal b (blk 2)
    | _ -> false)

let test_p_no_normal_vote_after_equivocating_opt () =
  let mock, node = make_pipelined ~id:3 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  let equivocating = B.block ~view:2 ~payload_id:77 ~parent:(blk 1) () in
  Pipelined_node.handle node ~src:1
    (Message.Propose { block = equivocating; cert = cert_of 1 });
  check_int "only the optimistic vote" 1 (List.length (votes mock))

let test_p_forms_cert_from_votes () =
  (* Receiving a quorum of multicast votes certifies the block locally and
     advances the view. *)
  let _mock, node = make_pipelined ~id:2 () in
  deliver_peer_votes node ~kind:Vote_kind.Normal ~skip:2 (blk 1);
  check_int "advanced on locally formed cert" 2 (Pipelined_node.current_view node);
  check_int "locked the new cert" 1 (Pipelined_node.lock node).Cert.view

let test_p_opt_and_normal_certs_do_not_mix () =
  let _mock, node = make_pipelined ~id:2 () in
  (* Two opt votes plus one normal vote: no certificate of either kind. *)
  Pipelined_node.handle node ~src:0 (Message.Vote { kind = Vote_kind.Opt; block = blk 1 });
  Pipelined_node.handle node ~src:1 (Message.Vote { kind = Vote_kind.Opt; block = blk 1 });
  Pipelined_node.handle node ~src:3
    (Message.Vote { kind = Vote_kind.Normal; block = blk 1 });
  check_int "no certificate formed" 1 (Pipelined_node.current_view node)

let test_p_timer_expiry_sends_timeout_with_lock () =
  let mock, node = make_pipelined ~id:2 () in
  Mock.advance mock ~to_:(3. *. delta);
  (match timeouts mock with
  | [ (1, Some lock) ] -> check_int "lock is genesis" 0 lock.Cert.view
  | _ -> Alcotest.fail "expected one timeout for view 1 carrying the lock");
  check_int "timeout view recorded" 1 (Pipelined_node.timeout_view node)

let test_p_timer_not_fired_before_3_delta () =
  let mock, _node = make_pipelined ~id:2 () in
  Mock.advance mock ~to_:(2.9 *. delta);
  check_int "no timeout before 3 delta" 0 (List.length (timeouts mock))

let test_p_bracha_amplification () =
  (* f + 1 = 2 distinct timeouts make the node join the view change. *)
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Timeout { view = 1; lock = None });
  check_int "one timeout is not enough" 0 (List.length (timeouts mock));
  Pipelined_node.handle node ~src:1 (Message.Timeout { view = 1; lock = None });
  check_int "joined after weak quorum" 1 (List.length (timeouts mock))

let test_p_tc_formation_advances_and_unicasts () =
  let mock, node = make_pipelined ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 3 ];
  check_int "entered view 2 via TC" 2 (Pipelined_node.current_view node);
  (* The TC is unicast to the leader of view 2 (node 1), not multicast. *)
  check "TC unicast to new leader" true
    (List.exists
       (function 1, Message.Tc_gossip tc -> tc.Tc.view = 1 | _ -> false)
       (Mock.unicasts mock));
  check "TC not multicast" true
    (not
       (List.exists
          (function Message.Tc_gossip _ -> true | _ -> false)
          (Mock.multicasts mock)))

let test_p_fallback_proposal_as_new_leader () =
  (* Node 1 leads view 2; a TC for view 1 makes it fallback-propose
     immediately (optimistic responsiveness: no 2-delta wait). *)
  let mock, node = make_pipelined ~id:1 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 2; 3 ];
  check_int "entered view 2" 2 (Pipelined_node.current_view node);
  let fbs = List.filter_map (function `Fb f -> Some f | _ -> None) (proposals mock) in
  match fbs with
  | [ (block, cert, tc) ] ->
      check_int "fallback for view 2" 2 block.Block.view;
      check_int "extends the lock (genesis)" 0 cert.Cert.view;
      check_int "justified by TC for view 1" 1 tc.Tc.view
  | _ -> Alcotest.fail "expected exactly one fallback proposal"

let test_p_fallback_vote () =
  let mock, node = make_pipelined ~id:2 () in
  (* Enter view 2 via a TC so the fallback proposal is votable. *)
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 3 ];
  let fb_block = B.block ~proposer:1 ~view:2 ~parent:Block.genesis () in
  let tc = B.tc 1 in
  Pipelined_node.handle node ~src:1
    (Message.Fb_propose { block = fb_block; cert = Cert.genesis; tc });
  check "fallback vote cast" true
    (List.exists (fun (k, _) -> Vote_kind.equal k Vote_kind.Fallback) (votes mock))

let test_p_timeout_blocks_votes_in_view () =
  let mock, node = make_pipelined ~id:2 () in
  Mock.advance mock ~to_:(3. *. delta);
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  check_int "no vote after timing out of the view" 0 (List.length (votes mock))

let test_p_two_chain_commit () =
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  check_int "nothing committed on one cert" 0 (Pipelined_node.committed node);
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 2));
  check_int "parent committed on consecutive certs" 1 (Pipelined_node.committed node);
  match Mock.committed mock with
  | [ b ] -> check "committed block 1" true (Block.equal b (blk 1))
  | _ -> Alcotest.fail "expected one committed block"

let test_p_indirect_commit_of_ancestors () =
  let mock, node = make_pipelined ~id:2 () in
  (* Blocks 1 and 2 are known (their proposals arrived) but were never
     certified from this node's viewpoint; certificates for views 3 and 4
     then commit blocks 1..3 (3 directly, 1 and 2 as ancestors). *)
  Pipelined_node.handle node ~src:0 (Message.Opt_propose { block = blk 1 });
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 3));
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 4));
  check_int "three blocks committed" 3 (Pipelined_node.committed node);
  check "chain order" true
    (List.map (fun (b : Block.t) -> b.Block.height) (Mock.committed mock) = [ 1; 2; 3 ])

let test_p_nonconsecutive_certs_do_not_commit () =
  let _mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 3));
  check_int "gap means no commit" 0 (Pipelined_node.committed node)

let test_p_normal_after_opt_proposal_same_block () =
  (* Leader of view 2 (node 1) votes in view 1, opt-proposes B_2, then upon
     certification of view 1 must normal-propose the SAME block. *)
  let mock, node = make_pipelined ~id:1 () in
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  deliver_peer_votes node ~kind:Vote_kind.Normal ~skip:1 (blk 1);
  let opts = List.filter_map (function `Opt b -> Some b | _ -> None) (proposals mock) in
  let normals =
    List.filter_map
      (function `Normal (b, _) when b.Block.view = 2 -> Some b | _ -> None)
      (proposals mock)
  in
  match (opts, normals) with
  | [ o ], [ n ] -> check "optimistic and normal proposals coincide" true (Block.equal o n)
  | _ -> Alcotest.fail "expected one opt and one normal proposal for view 2"


(* --- View-synchronization edge cases --------------------------------------------- *)

let test_p_view_jump_on_future_cert () =
  (* A certificate ten views ahead: the node jumps straight past the gap. *)
  let _mock, node = make_pipelined ~id:2 () in
  let far_chain = B.chain 10 in
  let far = List.nth far_chain 9 in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (B.cert far));
  check_int "jumped to view 11" 11 (Pipelined_node.current_view node);
  check_int "locked the future cert" 10 (Pipelined_node.lock node).Cert.view

let test_p_stale_proposal_ignored () =
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 4));
  Mock.clear_outbox mock;
  (* A proposal for long-gone view 1 must not extract a vote. *)
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  check_int "no vote for a stale view" 0 (List.length (votes mock))

let test_p_timeout_carries_lock_rule () =
  (* The Lock rule fires on certificates embedded in ANY message, including
     timeouts: a timeout carrying C_2 updates the receiver's lock and view. *)
  let _mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:0
    (Message.Timeout { view = 3; lock = Some (cert_of 2) });
  check_int "lock adopted from a timeout" 2 (Pipelined_node.lock node).Cert.view;
  check_int "and the view advanced" 3 (Pipelined_node.current_view node)

let test_p_late_cert_enables_normal_vote_after_tc () =
  (* Enter view 2 via TC_1; the certificate for view 1 then arrives late,
     followed by a normal proposal justified by it.  timeout_view = 1 < 2,
     so the normal vote is still allowed. *)
  let mock, node = make_pipelined ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 3 ];
  check_int "in view 2 via TC" 2 (Pipelined_node.current_view node);
  Mock.clear_outbox mock;
  Pipelined_node.handle node ~src:1
    (Message.Propose { block = blk 2; cert = cert_of 1 });
  check "normal vote allowed after joining the TC" true
    (List.exists (fun (k, _) -> Vote_kind.equal k Vote_kind.Normal) (votes mock))

let test_p_fb_proposal_wrong_tc_view_rejected () =
  let mock, node = make_pipelined ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 3 ];
  Mock.clear_outbox mock;
  (* Fallback proposal for view 2 justified by a TC for view 3: invalid. *)
  let fb = B.block ~proposer:1 ~view:2 ~parent:Block.genesis () in
  Pipelined_node.handle node ~src:1
    (Message.Fb_propose { block = fb; cert = Cert.genesis; tc = B.tc 3 });
  check "mismatched TC view rejected" true
    (not (List.exists (fun (k, _) -> Vote_kind.equal k Vote_kind.Fallback) (votes mock)))

let test_s_votes_again_after_view_change () =
  (* Simple Moonshot: timing out of view 1 stops voting there, but the node
     votes normally once a TC moves it to view 2. *)
  let mock, node = make_simple ~id:2 () in
  Mock.advance mock ~to_:(5. *. delta);
  check_int "timed out of view 1" 1 (List.length (timeouts mock));
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 3 ];
  Mock.clear_outbox mock;
  (* In view 2, a valid proposal extracts a vote despite the old timeout. *)
  let b2 = B.block ~proposer:1 ~view:2 ~parent:Block.genesis () in
  Simple_node.handle node ~src:1
    (Message.Propose { block = b2; cert = Cert.genesis });
  check "votes in the new view" true (List.length (votes mock) >= 1)

(* --- Commit Moonshot --------------------------------------------------------- *)

let test_c_commit_vote_on_cert () =
  let mock, node = make_pipelined ~precommit:true ~id:2 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  match commit_votes mock with
  | [ (1, b) ] -> check "commit vote for certified block" true (Block.equal b (blk 1))
  | _ -> Alcotest.fail "expected exactly one commit vote"

let test_c_quorum_of_commit_votes_commits () =
  let _mock, node = make_pipelined ~precommit:true ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Commit_vote { view = 1; block = blk 1 }))
    [ 0; 1; 3 ];
  check_int "committed via the explicit path" 1 (Pipelined_node.committed node)

let test_c_no_commit_below_quorum () =
  let _mock, node = make_pipelined ~precommit:true ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Commit_vote { view = 1; block = blk 1 }))
    [ 0; 1 ];
  check_int "two commit votes are not enough" 0 (Pipelined_node.committed node)

let test_c_no_commit_vote_after_timeout () =
  let mock, node = make_pipelined ~precommit:true ~id:2 () in
  Mock.advance mock ~to_:(3. *. delta);
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  check_int "timed-out node withholds commit vote" 0 (List.length (commit_votes mock))

let test_c_plain_pipelined_ignores_commit_votes () =
  let _mock, node = make_pipelined ~precommit:false ~id:2 () in
  List.iter
    (fun src ->
      Pipelined_node.handle node ~src (Message.Commit_vote { view = 1; block = blk 1 }))
    [ 0; 1; 3 ];
  check_int "pipelined moonshot has no explicit commit path" 0
    (Pipelined_node.committed node)



(* --- Block synchronizer -------------------------------------------------------- *)

let test_sync_serves_requests () =
  let mock, node = make_pipelined ~id:2 () in
  (* Learn blocks 1 and 2 via proposals. *)
  Pipelined_node.handle node ~src:0 (Message.Opt_propose { block = blk 1 });
  Pipelined_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  Pipelined_node.handle node ~src:3 (Message.Block_request { hash = (blk 2).Block.hash });
  check "responds with the chain segment" true
    (List.exists
       (function
         | 3, Message.Blocks_response { blocks } ->
             List.exists (Block.equal (blk 2)) blocks
             && List.exists (Block.equal (blk 1)) blocks
         | _ -> false)
       (Mock.unicasts mock))

let test_sync_ignores_unknown_requests () =
  let mock, node = make_pipelined ~id:2 () in
  Pipelined_node.handle node ~src:3 (Message.Block_request { hash = (blk 5).Block.hash });
  check "no response for unknown block" true
    (not
       (List.exists
          (function _, Message.Blocks_response _ -> true | _ -> false)
          (Mock.unicasts mock)))

let test_sync_requests_missing_ancestors () =
  (* Certificates for views 3 and 4 arrive at a node missing blocks 1-2:
     the commit defers and a Block_request goes to block 3's proposer. *)
  let mock, node = make_pipelined ~id:3 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 3));
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 4));
  check "block request sent for the gap" true
    (List.exists
       (function _, Message.Block_request _ -> true | _ -> false)
       (Mock.unicasts mock));
  (* Feeding the segment completes the deferred commits. *)
  Pipelined_node.handle node ~src:2
    (Message.Blocks_response { blocks = [ blk 1; blk 2 ] });
  check_int "commits complete after sync" 3 (Pipelined_node.committed node)


(* --- Crash recovery (write-ahead log) ------------------------------------------- *)

let test_wal_prevents_double_vote () =
  (* Vote, crash, restart with the same WAL: the vote slot for the current
     view survives, so an equivocating proposal cannot extract a second
     (conflicting) vote — the amnesia attack the WAL exists to stop. *)
  let wal = Wal.create () in
  let mock1, env1 = Mock.create ~n:4 ~delta ~id:2 () in
  let node1 = Pipelined_node.create ~wal env1 in
  Mock.attach mock1 (fun ~src msg -> Pipelined_node.handle node1 ~src msg);
  Pipelined_node.start node1;
  Pipelined_node.handle node1 ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  check_int "voted before the crash" 1 (List.length (votes mock1));
  (* Crash: node1 is discarded.  Restart over the same WAL. *)
  let mock2, env2 = Mock.create ~n:4 ~delta ~id:2 () in
  let node2 = Pipelined_node.create ~wal env2 in
  Mock.attach mock2 (fun ~src msg -> Pipelined_node.handle node2 ~src msg);
  Pipelined_node.start node2;
  check_int "resumed in the recorded view" 1 (Pipelined_node.current_view node2);
  let equivocating = B.block ~view:1 ~payload_id:777 ~parent:Block.genesis () in
  Pipelined_node.handle node2 ~src:0
    (Message.Propose { block = equivocating; cert = Cert.genesis });
  check_int "no second vote after restart" 0 (List.length (votes mock2))

let test_wal_restores_lock_and_view () =
  let wal = Wal.create () in
  let mock1, env1 = Mock.create ~n:4 ~delta ~id:2 () in
  let node1 = Pipelined_node.create ~wal env1 in
  Mock.attach mock1 (fun ~src msg -> Pipelined_node.handle node1 ~src msg);
  Pipelined_node.start node1;
  Pipelined_node.handle node1 ~src:0 (Message.Cert_gossip (cert_of 2));
  check_int "advanced to view 3" 3 (Pipelined_node.current_view node1);
  let mock2, env2 = Mock.create ~n:4 ~delta ~id:2 () in
  let node2 = Pipelined_node.create ~wal env2 in
  Mock.attach mock2 (fun ~src msg -> Pipelined_node.handle node2 ~src msg);
  Pipelined_node.start node2;
  check_int "view restored" 3 (Pipelined_node.current_view node2);
  check_int "lock restored" 2 (Pipelined_node.lock node2).Cert.view;
  check_int "wal was written" (Wal.writes wal) (Wal.writes wal);
  ignore mock2

let test_wal_timeout_state_survives () =
  let wal = Wal.create () in
  let mock1, env1 = Mock.create ~n:4 ~delta ~id:2 () in
  let node1 = Pipelined_node.create ~wal env1 in
  Mock.attach mock1 (fun ~src msg -> Pipelined_node.handle node1 ~src msg);
  Pipelined_node.start node1;
  Mock.advance mock1 ~to_:(3. *. delta);
  check_int "timed out of view 1" 1 (Pipelined_node.timeout_view node1);
  let mock2, env2 = Mock.create ~n:4 ~delta ~id:2 () in
  let node2 = Pipelined_node.create ~wal env2 in
  Mock.attach mock2 (fun ~src msg -> Pipelined_node.handle node2 ~src msg);
  Pipelined_node.start node2;
  check_int "timeout view survives restart" 1 (Pipelined_node.timeout_view node2);
  (* An optimistic proposal for view 2 needs timeout_view < 1: refused. *)
  Pipelined_node.handle node2 ~src:0 (Message.Cert_gossip (cert_of 1));
  Pipelined_node.handle node2 ~src:1 (Message.Opt_propose { block = blk 2 });
  check "no optimistic vote after a remembered timeout" true
    (not (List.exists (fun (k, _) -> Vote_kind.equal k Vote_kind.Opt) (votes mock2)))


let test_wal_double_crash_still_no_double_vote () =
  (* Crash twice in a row: the restored vote slots must survive the second
     restart too (the recovery path re-persists them). *)
  let wal = Wal.create () in
  let boot () =
    let mock, env = Mock.create ~n:4 ~delta ~id:2 () in
    let node = Pipelined_node.create ~wal env in
    Mock.attach mock (fun ~src msg -> Pipelined_node.handle node ~src msg);
    Pipelined_node.start node;
    (mock, node)
  in
  let mock1, node1 = boot () in
  Pipelined_node.handle node1 ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  check_int "voted once" 1 (List.length (votes mock1));
  let _mock2, _node2 = boot () in
  (* Second crash immediately after restart, before any message. *)
  let mock3, node3 = boot () in
  let equivocating = B.block ~view:1 ~payload_id:888 ~parent:Block.genesis () in
  Pipelined_node.handle node3 ~src:0
    (Message.Propose { block = equivocating; cert = Cert.genesis });
  check_int "still no second vote" 0 (List.length (votes mock3))

let test_recovered_leader_does_not_fork () =
  (* A leader that recovers into its own view must not propose a block
     extending genesis with a stale justification. *)
  let wal = Wal.create () in
  let mock1, env1 = Mock.create ~n:4 ~delta ~id:0 () in
  let node1 = Pipelined_node.create ~wal env1 in
  Mock.attach mock1 (fun ~src msg -> Pipelined_node.handle node1 ~src msg);
  Pipelined_node.start node1;
  (* node 0 proposed for view 1 and crashes; restart. *)
  let mock2, env2 = Mock.create ~n:4 ~delta ~id:0 () in
  let node2 = Pipelined_node.create ~wal env2 in
  Mock.attach mock2 (fun ~src msg -> Pipelined_node.handle node2 ~src msg);
  Pipelined_node.start node2;
  check_int "no re-proposal on recovery" 0 (List.length (proposals mock2));
  check_int "still leader of its recorded view" 1 (Pipelined_node.current_view node2)

(* --- LSO variant -------------------------------------------------------------- *)

let make_lso ~id () =
  let mock, env = Mock.create ~n:4 ~delta ~id () in
  let node = Pipelined_node.create ~lso:true env in
  Mock.attach mock (fun ~src msg -> Pipelined_node.handle node ~src msg);
  Pipelined_node.start node;
  (mock, node)

let test_lso_skips_normal_after_opt () =
  (* An LSO leader that already optimistically proposed for view 2 stays
     silent when it enters view 2 via the certificate. *)
  let mock, node = make_lso ~id:1 () in
  Pipelined_node.handle node ~src:0
    (Message.Propose { block = blk 1; cert = Cert.genesis });
  deliver_peer_votes node ~kind:Vote_kind.Normal ~skip:1 (blk 1);
  check_int "entered view 2" 2 (Pipelined_node.current_view node);
  let normals_v2 =
    List.filter_map
      (function `Normal (b, _) when b.Block.view = 2 -> Some b | _ -> None)
      (proposals mock)
  in
  check_int "no normal proposal after the optimistic one" 0
    (List.length normals_v2);
  check_int "the optimistic proposal went out" 1
    (List.length
       (List.filter_map (function `Opt b -> Some b | _ -> None) (proposals mock)))

let test_lso_still_proposes_without_opt () =
  (* Entering a view it never optimistically proposed for, an LSO leader
     proposes normally (it is speaking for the first time). *)
  let mock, node = make_lso ~id:1 () in
  Pipelined_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  let normals_v2 =
    List.filter_map
      (function `Normal (b, _) when b.Block.view = 2 -> Some b | _ -> None)
      (proposals mock)
  in
  check_int "first-time proposal sent" 1 (List.length normals_v2)

(* --- Simple Moonshot ----------------------------------------------------------- *)

let test_s_leader_proposes_at_start () =
  let mock, _node = make_simple ~id:0 () in
  match proposals mock with
  | [ `Normal (block, cert) ] ->
      check_int "view 1 block" 1 block.Block.view;
      check_int "genesis justification" 0 cert.Cert.view
  | _ -> Alcotest.fail "leader should propose at start"

let test_s_votes_once_only () =
  (* One vote per view even when both the optimistic and the normal
     proposal arrive (Figure 1: "votes once using one of the rules"). *)
  let mock, node = make_simple ~id:3 () in
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Simple_node.handle node ~src:1 (Message.Opt_propose { block = blk 2 });
  Simple_node.handle node ~src:1 (Message.Propose { block = blk 2; cert = cert_of 1 });
  check_int "exactly one vote" 1 (List.length (votes mock))

let test_s_lock_only_updates_on_view_entry () =
  let _mock, node = make_simple ~id:3 () in
  (* Jump to view 4 via a TC; lock is still genesis. *)
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 3; lock = None }))
    [ 0; 1; 2 ];
  check_int "in view 4" 4 (Simple_node.current_view node);
  check_int "lock still genesis" 0 (Simple_node.lock node).Cert.view;
  (* A stale certificate arriving mid-view must NOT move the lock... *)
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  check_int "lock unchanged mid-view" 0 (Simple_node.lock node).Cert.view;
  (* ...but is adopted at the next view entry. *)
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 4; lock = None }))
    [ 0; 1; 2 ];
  check_int "lock updated on entering view 5" 1 (Simple_node.lock node).Cert.view

let test_s_status_sent_when_lock_stale () =
  let mock, node = make_simple ~id:3 () in
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 2 ];
  (* Entering view 2 with a genesis lock (view 0 < 1): status to leader 1. *)
  check "status unicast to new leader" true
    (List.exists
       (function 1, Message.Status { view = 2; _ } -> true | _ -> false)
       (Mock.unicasts mock))

let test_s_no_status_when_lock_fresh () =
  let mock, node = make_simple ~id:3 () in
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  check "no status when lock is for v - 1" true
    (not
       (List.exists
          (function _, Message.Status _ -> true | _ -> false)
          (Mock.unicasts mock)))

let test_s_leader_waits_2delta_on_tc_entry () =
  (* Node 1 leads view 2 but enters it via TC: it must wait up to 2 delta
     for the previous view's certificate before proposing. *)
  let mock, node = make_simple ~id:1 () in
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 2; 3 ];
  check_int "entered view 2" 2 (Simple_node.current_view node);
  let view2_proposals () =
    List.filter_map
      (function `Normal (b, c) when b.Block.view = 2 -> Some (b, c) | _ -> None)
      (proposals mock)
  in
  check_int "no proposal yet" 0 (List.length (view2_proposals ()));
  Mock.advance mock ~to_:(Mock.sent mock |> fun _ -> 2. *. delta);
  match view2_proposals () with
  | [ (block, cert) ] ->
      check "extends highest known cert (genesis)" true
        (Block.extends_hash block ~parent_hash:cert.Cert.block.Block.hash)
  | _ -> Alcotest.fail "expected the 2-delta fallback proposal"

let test_s_leader_proposes_early_on_cert () =
  (* Same as above, but the missing certificate arrives before 2 delta: the
     leader proposes immediately, extending it. *)
  let mock, node = make_simple ~id:1 () in
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 2; 3 ];
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  let v2 =
    List.filter_map
      (function `Normal (b, c) when b.Block.view = 2 -> Some (b, c) | _ -> None)
      (proposals mock)
  in
  match v2 with
  | [ (block, cert) ] ->
      check_int "proposed before the 2-delta deadline" 1 cert.Cert.view;
      check "extends the certified block" true
        (Block.extends_hash block ~parent_hash:(blk 1).Block.hash)
  | _ -> Alcotest.fail "expected an early proposal"

let test_s_tc_multicast_on_entry () =
  (* Simple Moonshot multicasts the TC it entered by (Pipelined unicasts). *)
  let mock, node = make_simple ~id:3 () in
  List.iter
    (fun src -> Simple_node.handle node ~src (Message.Timeout { view = 1; lock = None }))
    [ 0; 1; 2 ];
  check "TC multicast" true
    (List.exists
       (function Message.Tc_gossip tc -> tc.Tc.view = 1 | _ -> false)
       (Mock.multicasts mock))

let test_s_timer_is_5_delta () =
  let mock, _node = make_simple ~id:3 () in
  Mock.advance mock ~to_:(4.9 *. delta);
  check_int "silent before 5 delta" 0 (List.length (timeouts mock));
  Mock.advance mock ~to_:(5. *. delta);
  check_int "timeout at 5 delta" 1 (List.length (timeouts mock))

let test_s_weak_quorum_triggers_timeout () =
  let mock, node = make_simple ~id:3 () in
  Simple_node.handle node ~src:0 (Message.Timeout { view = 1; lock = None });
  check_int "one is not enough" 0 (List.length (timeouts mock));
  Simple_node.handle node ~src:1 (Message.Timeout { view = 1; lock = None });
  check_int "f+1 triggers own timeout" 1 (List.length (timeouts mock))

let test_s_commit_two_chain () =
  let mock, node = make_simple ~id:3 () in
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 1));
  Simple_node.handle node ~src:0 (Message.Cert_gossip (cert_of 2));
  check_int "committed one" 1 (Simple_node.committed node);
  check "it is block 1" true
    (match Mock.committed mock with [ b ] -> Block.equal b (blk 1) | _ -> false)

let () =
  Alcotest.run "nodes"
    [
      ( "pipelined",
        [
          Alcotest.test_case "leader proposes at start" `Quick
            test_p_leader_proposes_at_start;
          Alcotest.test_case "non-leader quiet" `Quick test_p_nonleader_quiet_at_start;
          Alcotest.test_case "votes on valid proposal" `Quick
            test_p_votes_on_valid_proposal;
          Alcotest.test_case "optimistic propose on vote" `Quick
            test_p_vote_then_opt_propose_as_next_leader;
          Alcotest.test_case "no double vote" `Quick test_p_no_double_vote_on_redelivery;
          Alcotest.test_case "rejects wrong leader" `Quick test_p_rejects_wrong_leader;
          Alcotest.test_case "cert advances + gossips" `Quick
            test_p_cert_advances_view_and_gossips;
          Alcotest.test_case "opt vote with lock" `Quick
            test_p_opt_vote_when_locked_on_parent;
          Alcotest.test_case "opt proposal buffered" `Quick
            test_p_opt_vote_buffered_until_lock;
          Alcotest.test_case "opt then normal same block" `Quick
            test_p_opt_then_normal_same_block;
          Alcotest.test_case "no normal vote after equivocating opt" `Quick
            test_p_no_normal_vote_after_equivocating_opt;
          Alcotest.test_case "cert from votes" `Quick test_p_forms_cert_from_votes;
          Alcotest.test_case "vote kinds do not mix" `Quick
            test_p_opt_and_normal_certs_do_not_mix;
          Alcotest.test_case "timeout carries lock" `Quick
            test_p_timer_expiry_sends_timeout_with_lock;
          Alcotest.test_case "timer is 3 delta" `Quick test_p_timer_not_fired_before_3_delta;
          Alcotest.test_case "bracha amplification" `Quick test_p_bracha_amplification;
          Alcotest.test_case "TC advances + unicast" `Quick
            test_p_tc_formation_advances_and_unicasts;
          Alcotest.test_case "fallback proposal" `Quick
            test_p_fallback_proposal_as_new_leader;
          Alcotest.test_case "fallback vote" `Quick test_p_fallback_vote;
          Alcotest.test_case "timeout blocks voting" `Quick
            test_p_timeout_blocks_votes_in_view;
          Alcotest.test_case "two-chain commit" `Quick test_p_two_chain_commit;
          Alcotest.test_case "indirect ancestor commit" `Quick
            test_p_indirect_commit_of_ancestors;
          Alcotest.test_case "gap blocks commit" `Quick
            test_p_nonconsecutive_certs_do_not_commit;
          Alcotest.test_case "normal after opt proposal" `Quick
            test_p_normal_after_opt_proposal_same_block;
        ] );
      ( "view-sync",
        [
          Alcotest.test_case "future-cert jump" `Quick test_p_view_jump_on_future_cert;
          Alcotest.test_case "stale proposal" `Quick test_p_stale_proposal_ignored;
          Alcotest.test_case "lock via timeout" `Quick test_p_timeout_carries_lock_rule;
          Alcotest.test_case "late cert after TC" `Quick
            test_p_late_cert_enables_normal_vote_after_tc;
          Alcotest.test_case "fb TC view checked" `Quick
            test_p_fb_proposal_wrong_tc_view_rejected;
          Alcotest.test_case "simple votes after view change" `Quick
            test_s_votes_again_after_view_change;
        ] );
      ( "commit-moonshot",
        [
          Alcotest.test_case "commit vote on cert" `Quick test_c_commit_vote_on_cert;
          Alcotest.test_case "quorum commits" `Quick test_c_quorum_of_commit_votes_commits;
          Alcotest.test_case "below quorum holds" `Quick test_c_no_commit_below_quorum;
          Alcotest.test_case "timeout withholds commit vote" `Quick
            test_c_no_commit_vote_after_timeout;
          Alcotest.test_case "pipelined ignores commit votes" `Quick
            test_c_plain_pipelined_ignores_commit_votes;
        ] );
      ( "sync",
        [
          Alcotest.test_case "serves requests" `Quick test_sync_serves_requests;
          Alcotest.test_case "unknown request ignored" `Quick
            test_sync_ignores_unknown_requests;
          Alcotest.test_case "fetches missing ancestors" `Quick
            test_sync_requests_missing_ancestors;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "no double vote" `Quick test_wal_prevents_double_vote;
          Alcotest.test_case "lock + view restored" `Quick test_wal_restores_lock_and_view;
          Alcotest.test_case "timeout state survives" `Quick
            test_wal_timeout_state_survives;
          Alcotest.test_case "double crash" `Quick
            test_wal_double_crash_still_no_double_vote;
          Alcotest.test_case "recovered leader silent" `Quick
            test_recovered_leader_does_not_fork;
        ] );
      ( "lso",
        [
          Alcotest.test_case "skips re-proposal" `Quick test_lso_skips_normal_after_opt;
          Alcotest.test_case "first proposal kept" `Quick
            test_lso_still_proposes_without_opt;
        ] );
      ( "simple",
        [
          Alcotest.test_case "leader proposes at start" `Quick
            test_s_leader_proposes_at_start;
          Alcotest.test_case "votes once only" `Quick test_s_votes_once_only;
          Alcotest.test_case "lock updates on entry only" `Quick
            test_s_lock_only_updates_on_view_entry;
          Alcotest.test_case "status on stale lock" `Quick test_s_status_sent_when_lock_stale;
          Alcotest.test_case "no status when fresh" `Quick test_s_no_status_when_lock_fresh;
          Alcotest.test_case "2-delta proposal wait" `Quick
            test_s_leader_waits_2delta_on_tc_entry;
          Alcotest.test_case "early proposal on cert" `Quick
            test_s_leader_proposes_early_on_cert;
          Alcotest.test_case "TC multicast on entry" `Quick test_s_tc_multicast_on_entry;
          Alcotest.test_case "timer is 5 delta" `Quick test_s_timer_is_5_delta;
          Alcotest.test_case "weak quorum timeout" `Quick test_s_weak_quorum_triggers_timeout;
          Alcotest.test_case "two-chain commit" `Quick test_s_commit_two_chain;
        ] );
    ]
