(* Behavioural tests for the Jolteon baseline: vote aggregation at the next
   leader, 2-chain commit with consecutive rounds, quadratic view change. *)

open Bft_types
open Jolteon
module B = Test_support.Builders
module Mock = Test_support.Mock_env
module Cert = Moonshot.Cert
module Tc = Moonshot.Tc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chain = B.chain 5
let blk v = List.nth chain (v - 1)
let qc_of v = B.cert (blk v)
let delta = 100.

let make ~id () =
  let mock, env = Mock.create ~n:4 ~delta ~id () in
  let node = Jolteon_node.create env in
  Mock.attach mock (fun ~src msg -> Jolteon_node.handle node ~src msg);
  Jolteon_node.start node;
  (mock, node)

let unicast_votes mock =
  List.filter_map
    (function dst, Jolteon_msg.Vote { block } -> Some (dst, block) | _ -> None)
    (Mock.unicasts mock)

let multicast_timeouts mock =
  List.filter_map
    (function
      | Jolteon_msg.Timeout { round; high_qc } -> Some (round, high_qc) | _ -> None)
    (Mock.multicasts mock)

let proposals mock =
  List.filter_map
    (function
      | Jolteon_msg.Propose { block; qc; tc } -> Some (block, qc, tc) | _ -> None)
    (Mock.multicasts mock)

let test_leader_proposes_at_start () =
  let mock, _node = make ~id:0 () in
  match proposals mock with
  | [ (block, qc, None) ] ->
      check_int "round 1" 1 block.Block.view;
      check_int "genesis qc" 0 qc.Cert.view
  | _ -> Alcotest.fail "leader of round 1 should propose once"

let test_vote_goes_to_next_leader () =
  let mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Propose { block = blk 1; qc = Cert.genesis; tc = None });
  match unicast_votes mock with
  | [ (dst, b) ] ->
      check_int "vote unicast to leader of round 2" 1 dst;
      check "for the proposed block" true (Block.equal b (blk 1))
  | _ -> Alcotest.fail "expected exactly one unicast vote"

let test_vote_not_multicast () =
  let mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Propose { block = blk 1; qc = Cert.genesis; tc = None });
  check "votes are never multicast in Jolteon" true
    (not
       (List.exists
          (function Jolteon_msg.Vote _ -> true | _ -> false)
          (Mock.multicasts mock)))

let test_no_double_vote () =
  let mock, node = make ~id:2 () in
  let msg = Jolteon_msg.Propose { block = blk 1; qc = Cert.genesis; tc = None } in
  Jolteon_node.handle node ~src:0 msg;
  Jolteon_node.handle node ~src:0 msg;
  check_int "one vote" 1 (List.length (unicast_votes mock))

let test_aggregator_forms_qc_and_proposes () =
  (* Node 1 leads round 2: three votes for the round-1 block let it form the
     QC, advance and propose its own block carrying that QC. *)
  let mock, node = make ~id:1 () in
  List.iter
    (fun src -> Jolteon_node.handle node ~src (Jolteon_msg.Vote { block = blk 1 }))
    [ 0; 2; 3 ];
  check_int "advanced to round 2" 2 (Jolteon_node.current_round node);
  match proposals mock with
  | [ (block, qc, None) ] ->
      check_int "round 2 block" 2 block.Block.view;
      check_int "carries QC for round 1" 1 qc.Cert.view;
      check "extends the certified block" true
        (Block.extends_hash block ~parent_hash:(blk 1).Block.hash)
  | _ -> Alcotest.fail "aggregator should propose with the fresh QC"

let test_nonaggregator_votes_dont_certify () =
  (* A replica that is not the next leader never receives votes in a real
     run; even if it did, two votes are below quorum. *)
  let _mock, node = make ~id:2 () in
  List.iter
    (fun src -> Jolteon_node.handle node ~src (Jolteon_msg.Vote { block = blk 1 }))
    [ 0; 3 ];
  check_int "no QC from two votes" 1 (Jolteon_node.current_round node)

let test_commit_on_consecutive_qcs () =
  let mock, node = make ~id:2 () in
  (* QCs travel inside proposals: round-2 proposal carries QC_1, round-3
     proposal carries QC_2; the latter commits block 1. *)
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 2; qc = qc_of 1; tc = None });
  check_int "nothing committed yet" 0 (Jolteon_node.committed node);
  Jolteon_node.handle node ~src:2
    (Jolteon_msg.Propose { block = blk 3; qc = qc_of 2; tc = None });
  check_int "block 1 committed" 1 (Jolteon_node.committed node);
  check "committed the right block" true
    (match Mock.committed mock with [ b ] -> Block.equal b (blk 1) | _ -> false)

let test_no_commit_on_gap () =
  let _mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 2; qc = qc_of 1; tc = None });
  (* A QC for round 3 extending a round-1 parent: no consecutive pair. *)
  let orphan = B.block ~proposer:3 ~view:4 ~parent:(blk 1) () in
  let qc_orphan = B.cert orphan in
  Jolteon_node.handle node ~src:3
    (Jolteon_msg.Propose
       { block = B.block ~proposer:0 ~view:5 ~parent:orphan (); qc = qc_orphan; tc = None });
  check_int "no commit without consecutive rounds" 0 (Jolteon_node.committed node)

let test_timer_is_4_delta () =
  let mock, _node = make ~id:2 () in
  Mock.advance mock ~to_:(3.9 *. delta);
  check_int "quiet before 4 delta" 0 (List.length (multicast_timeouts mock));
  Mock.advance mock ~to_:(4. *. delta);
  match multicast_timeouts mock with
  | [ (1, qc) ] -> check_int "timeout carries high QC" 0 qc.Cert.view
  | _ -> Alcotest.fail "expected a round-1 timeout at 4 delta"

let test_tc_lets_new_leader_propose () =
  (* Node 1 leads round 2; a quorum of timeouts for round 1 forms a TC and
     the new leader proposes with the TC attached. *)
  let mock, node = make ~id:1 () in
  List.iter
    (fun src ->
      Jolteon_node.handle node ~src
        (Jolteon_msg.Timeout { round = 1; high_qc = Cert.genesis }))
    [ 0; 2; 3 ];
  check_int "entered round 2" 2 (Jolteon_node.current_round node);
  match proposals mock with
  | [ (block, qc, Some tc) ] ->
      check_int "round 2" 2 block.Block.view;
      check_int "extends high QC (genesis)" 0 qc.Cert.view;
      check_int "TC for round 1" 1 tc.Tc.view
  | _ -> Alcotest.fail "expected a TC-justified proposal"

let test_replica_votes_on_tc_proposal () =
  let mock, node = make ~id:2 () in
  List.iter
    (fun src ->
      Jolteon_node.handle node ~src
        (Jolteon_msg.Timeout { round = 1; high_qc = Cert.genesis }))
    [ 0; 1; 3 ];
  let tc = B.tc ~high_cert:Cert.genesis 1 in
  let fb = B.block ~proposer:1 ~view:2 ~parent:Block.genesis () in
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = fb; qc = Cert.genesis; tc = Some tc });
  check_int "voted on TC-backed proposal" 1 (List.length (unicast_votes mock))

let test_replica_rejects_low_qc_after_tc () =
  (* After a TC whose high QC is for round 1, a proposal extending genesis
     (round-0 QC) is stale and must be rejected. *)
  let mock, node = make ~id:2 () in
  List.iter
    (fun src ->
      Jolteon_node.handle node ~src
        (Jolteon_msg.Timeout { round = 1; high_qc = qc_of 1 }))
    [ 0; 1; 3 ];
  let tc = B.tc ~high_cert:(qc_of 1) 1 in
  let stale = B.block ~proposer:1 ~view:2 ~parent:Block.genesis () in
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = stale; qc = Cert.genesis; tc = Some tc });
  check_int "stale proposal rejected" 0 (List.length (unicast_votes mock))

let test_bracha_amplification () =
  let mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Timeout { round = 1; high_qc = Cert.genesis });
  check_int "single timeout ignored" 0 (List.length (multicast_timeouts mock));
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Timeout { round = 1; high_qc = Cert.genesis });
  check_int "f+1 timeouts joined" 1 (List.length (multicast_timeouts mock))

let test_timeout_stops_voting () =
  let mock, node = make ~id:2 () in
  Mock.advance mock ~to_:(4. *. delta);
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Propose { block = blk 1; qc = Cert.genesis; tc = None });
  check_int "no vote after timing out" 0 (List.length (unicast_votes mock))

let test_old_round_proposal_rejected () =
  let mock, node = make ~id:2 () in
  (* Jump to round 3 via a QC for round 2. *)
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 3; qc = qc_of 2; tc = None });
  Mock.clear_outbox mock;
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Propose { block = blk 1; qc = Cert.genesis; tc = None });
  check_int "past-round proposal ignored" 0 (List.length (unicast_votes mock))



let test_jolteon_sync_serves_blocks () =
  let mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 2; qc = qc_of 1; tc = None });
  Jolteon_node.handle node ~src:3
    (Jolteon_msg.Block_request { hash = (blk 2).Block.hash });
  check "serves chain segment" true
    (List.exists
       (function
         | 3, Jolteon_msg.Blocks_response { blocks } ->
             List.exists (Block.equal (blk 2)) blocks
         | _ -> false)
       (Mock.unicasts mock))

let test_jolteon_fetches_missing_ancestors () =
  (* Consecutive QCs for rounds 3 and 4 arrive at a node missing blocks
     1-2: the deferred commit triggers a block request, and the response
     completes it. *)
  let mock, node = make ~id:2 () in
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Propose { block = blk 4; qc = qc_of 3; tc = None });
  Jolteon_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 5; qc = qc_of 4; tc = None });
  check "request sent for the gap" true
    (List.exists
       (function _, Jolteon_msg.Block_request _ -> true | _ -> false)
       (Mock.unicasts mock));
  Jolteon_node.handle node ~src:0
    (Jolteon_msg.Blocks_response { blocks = [ blk 1; blk 2 ] });
  check_int "deferred commit completes" 3 (Jolteon_node.committed node)

(* --- HotStuff (3-chain) baseline ---------------------------------------------- *)

let make_hs ~id () =
  let mock, env = Mock.create ~n:4 ~delta ~id () in
  let node = Hotstuff.Hotstuff_node.create env in
  Mock.attach mock (fun ~src msg -> Hotstuff.Hotstuff_node.handle node ~src msg);
  Hotstuff.Hotstuff_node.start node;
  (mock, node)

let test_hotstuff_needs_three_chain () =
  let _mock, node = make_hs ~id:2 () in
  Hotstuff.Hotstuff_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 2; qc = qc_of 1; tc = None });
  Hotstuff.Hotstuff_node.handle node ~src:2
    (Jolteon_msg.Propose { block = blk 3; qc = qc_of 2; tc = None });
  (* Two consecutive QCs commit in Jolteon but NOT in HotStuff. *)
  check_int "two-chain does not commit" 0 (Hotstuff.Hotstuff_node.committed node);
  Hotstuff.Hotstuff_node.handle node ~src:3
    (Jolteon_msg.Propose { block = blk 4; qc = qc_of 3; tc = None });
  check_int "three-chain commits the base" 1 (Hotstuff.Hotstuff_node.committed node)

let test_hotstuff_gap_blocks_commit () =
  let _mock, node = make_hs ~id:2 () in
  Hotstuff.Hotstuff_node.handle node ~src:1
    (Jolteon_msg.Propose { block = blk 2; qc = qc_of 1; tc = None });
  (* Skip view 3's QC: 1,2,4 are not consecutive. *)
  let orphan = B.block ~proposer:3 ~view:4 ~parent:(blk 2) () in
  let qc_orphan = B.cert orphan in
  Hotstuff.Hotstuff_node.handle node ~src:0
    (Jolteon_msg.Propose
       { block = B.block ~proposer:0 ~view:5 ~parent:orphan (); qc = qc_orphan; tc = None });
  check_int "non-consecutive chain holds" 0 (Hotstuff.Hotstuff_node.committed node)

let test_hotstuff_commits_ancestors () =
  let _mock, node = make_hs ~id:2 () in
  List.iter
    (fun v ->
      Hotstuff.Hotstuff_node.handle node ~src:(v mod 4)
        (Jolteon_msg.Propose { block = blk v; qc = qc_of (v - 1); tc = None }))
    [ 2; 3; 4; 5 ];
  (* QCs 1..4 recorded: windows (1,2,3) and (2,3,4) commit blocks 1 and 2. *)
  check_int "rolling three-chains" 2 (Hotstuff.Hotstuff_node.committed node)

let () =
  Alcotest.run "jolteon"
    [
      ( "steady-state",
        [
          Alcotest.test_case "leader proposes at start" `Quick
            test_leader_proposes_at_start;
          Alcotest.test_case "vote unicast to next leader" `Quick
            test_vote_goes_to_next_leader;
          Alcotest.test_case "votes not multicast" `Quick test_vote_not_multicast;
          Alcotest.test_case "no double vote" `Quick test_no_double_vote;
          Alcotest.test_case "aggregator forms QC" `Quick
            test_aggregator_forms_qc_and_proposes;
          Alcotest.test_case "below quorum no QC" `Quick
            test_nonaggregator_votes_dont_certify;
          Alcotest.test_case "2-chain commit" `Quick test_commit_on_consecutive_qcs;
          Alcotest.test_case "no commit on gap" `Quick test_no_commit_on_gap;
          Alcotest.test_case "old round rejected" `Quick test_old_round_proposal_rejected;
        ] );
      ( "view-change",
        [
          Alcotest.test_case "timer is 4 delta" `Quick test_timer_is_4_delta;
          Alcotest.test_case "TC proposal" `Quick test_tc_lets_new_leader_propose;
          Alcotest.test_case "vote on TC proposal" `Quick test_replica_votes_on_tc_proposal;
          Alcotest.test_case "stale QC rejected" `Quick test_replica_rejects_low_qc_after_tc;
          Alcotest.test_case "bracha amplification" `Quick test_bracha_amplification;
          Alcotest.test_case "timeout stops voting" `Quick test_timeout_stops_voting;
        ] );
      ( "sync",
        [
          Alcotest.test_case "serves blocks" `Quick test_jolteon_sync_serves_blocks;
          Alcotest.test_case "fetches missing" `Quick test_jolteon_fetches_missing_ancestors;
        ] );
      ( "hotstuff",
        [
          Alcotest.test_case "three-chain rule" `Quick test_hotstuff_needs_three_chain;
          Alcotest.test_case "gap blocks commit" `Quick test_hotstuff_gap_blocks_commit;
          Alcotest.test_case "rolling windows" `Quick test_hotstuff_commits_ancestors;
        ] );
    ]
