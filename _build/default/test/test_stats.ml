open Bft_stats

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)

let test_mean_and_sum () =
  check_float "mean" 2. (Descriptive.mean [ 1.; 2.; 3. ]);
  check_float "sum" 6. (Descriptive.sum [ 1.; 2.; 3. ]);
  check_float "singleton" 5. (Descriptive.mean [ 5. ])

let test_stddev () =
  check_float "constant has zero spread" 0. (Descriptive.stddev [ 4.; 4.; 4. ]);
  check_float "population stddev" 2. (Descriptive.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_median_and_percentiles () =
  check_float "odd median" 3. (Descriptive.median [ 5.; 1.; 3. ]);
  check_float "even median interpolates" 2.5 (Descriptive.median [ 1.; 2.; 3.; 4. ]);
  check_float "p0 is min" 1. (Descriptive.percentile 0. [ 3.; 1.; 2. ]);
  check_float "p100 is max" 3. (Descriptive.percentile 100. [ 3.; 1.; 2. ]);
  check_float "p75 interpolates" 2.5 (Descriptive.percentile 75. [ 1.; 2.; 3. ])

let test_min_max () =
  check_float "min" (-2.) (Descriptive.min [ 3.; -2.; 7. ]);
  check_float "max" 7. (Descriptive.max [ 3.; -2.; 7. ])

let test_empty_rejected () =
  check "mean of empty raises" true
    (try ignore (Descriptive.mean []); false with Invalid_argument _ -> true);
  check "percentile bounds checked" true
    (try ignore (Descriptive.percentile 101. [ 1. ]); false
     with Invalid_argument _ -> true)

let test_iqr_keeps_normal () =
  let xs = [ 10.; 11.; 12.; 13.; 14.; 15. ] in
  let kept, removed = Outliers.iqr_filter xs in
  check_int "nothing removed" 0 (List.length removed);
  check_int "all kept" 6 (List.length kept)

let test_iqr_removes_extreme () =
  let xs = [ 10.; 11.; 12.; 13.; 14.; 1000. ] in
  let kept, removed = Outliers.iqr_filter xs in
  check "the spike is removed" true (removed = [ 1000. ]);
  check_int "five kept" 5 (List.length kept)

let test_iqr_small_samples_passthrough () =
  let kept, removed = Outliers.iqr_filter [ 1.; 1000. ] in
  check "two points cannot be outliers" true (removed = [] && List.length kept = 2)

let test_iqr_on_records () =
  let records = [ ("a", 1.); ("b", 2.); ("c", 3.); ("d", 2.); ("e", 50.) ] in
  let kept, removed = Outliers.iqr_filter_on ~value:snd records in
  check "keyed filtering" true
    (List.map fst removed = [ "e" ] && List.length kept = 4)

let test_table_rendering () =
  let t = Table.create [ "proto"; "blocks" ] in
  Table.add_row t [ "PM"; "100" ];
  Table.add_row t [ "J"; "50" ];
  let buf = Buffer.create 64 in
  Table.print (Format.formatter_of_buffer buf) t;
  Format.pp_print_flush (Format.formatter_of_buffer buf) ();
  let s = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  check "headers present" true (contains "proto" && contains "PM" && contains "50")

let test_table_mismatch_rejected () =
  let t = Table.create [ "a"; "b" ] in
  check "row width enforced" true
    (try Table.add_row t [ "only-one" ]; false with Invalid_argument _ -> true)

let test_cells () =
  check "big floats no decimals" true (Table.cell 12345. = "12345");
  check "small floats 2 decimals" true (Table.cell 1.234 = "1.23");
  check "ints" true (Table.cell_int 7 = "7")

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/sum" `Quick test_mean_and_sum;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "median/percentiles" `Quick test_median_and_percentiles;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
      ( "outliers",
        [
          Alcotest.test_case "keeps normal data" `Quick test_iqr_keeps_normal;
          Alcotest.test_case "removes extremes" `Quick test_iqr_removes_extreme;
          Alcotest.test_case "small samples" `Quick test_iqr_small_samples_passthrough;
          Alcotest.test_case "keyed records" `Quick test_iqr_on_records;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "width enforced" `Quick test_table_mismatch_rejected;
          Alcotest.test_case "cell formats" `Quick test_cells;
        ] );
    ]
