(* Construction helpers for protocol data used across test suites. *)

open Bft_types

let payload ?(size = 0) id = Payload.make ~id ~size_bytes:size

(* A block at [view] proposed by the schedule's round-robin leader of a
   4-node network unless [proposer] is given. *)
let block ?proposer ?payload_id ?(payload_size = 0) ~view ~parent () =
  let proposer = Option.value proposer ~default:((view - 1) mod 4) in
  let payload_id = Option.value payload_id ~default:view in
  Block.create ~parent ~view ~proposer
    ~payload:(Payload.make ~id:payload_id ~size_bytes:payload_size)

(* A straight chain of [len] blocks on top of genesis: views 1..len. *)
let chain ?proposer ?(payload_size = 0) len =
  let rec go acc parent view =
    if view > len then List.rev acc
    else
      let b = block ?proposer ~payload_size ~view ~parent () in
      go (b :: acc) b (view + 1)
  in
  go [] Block.genesis 1

let cert ?(kind = Moonshot.Vote_kind.Normal) ?(signers = 3) (b : Block.t) =
  Moonshot.Cert.make ~kind ~view:b.Block.view ~block:b ~signers

let tc ?high_cert ?(signers = 3) view =
  Moonshot.Tc.make ~view ~high_cert ~signers

(* Run an experiment config and return (result, metrics). *)
let run cfg =
  let r = Bft_runtime.Harness.run cfg in
  (r, r.Bft_runtime.Harness.metrics)
