test/support/mock_env.ml: Bft_types Block Env Float List Option Payload Validator_set
