test/support/builders.ml: Bft_runtime Bft_types Block List Moonshot Option Payload
