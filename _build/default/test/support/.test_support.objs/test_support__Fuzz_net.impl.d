test/support/fuzz_net.ml: Array Bft_chain Bft_sim Bft_types Block Env Format Hashtbl List Moonshot Payload Validator_set
