test/support/cluster.ml: Array Bft_sim Bft_types Env List Moonshot Payload Validator_set
