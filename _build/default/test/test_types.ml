open Bft_types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Hash ----------------------------------------------------------------- *)

let test_hash_deterministic () =
  check "same fields same hash" true
    (Hash.equal (Hash.of_fields [ 1L; 2L ]) (Hash.of_fields [ 1L; 2L ]));
  check "same string same hash" true
    (Hash.equal (Hash.of_string "abc") (Hash.of_string "abc"))

let test_hash_distinguishes () =
  check "different fields differ" false
    (Hash.equal (Hash.of_fields [ 1L; 2L ]) (Hash.of_fields [ 2L; 1L ]));
  check "order matters" false
    (Hash.equal (Hash.of_string "ab") (Hash.of_string "ba"));
  check "field split matters" false
    (Hash.equal (Hash.of_fields [ 1L ]) (Hash.of_fields [ 1L; 0L ]))

let test_hash_null () =
  check "null is not a digest of empty" false
    (Hash.equal Hash.null (Hash.of_fields []));
  check "null equals itself" true (Hash.equal Hash.null Hash.null)

let test_hash_hex () =
  check_int "hex is 16 chars" 16 (String.length (Hash.to_hex (Hash.of_string "x")))

let test_hash_compare_consistent () =
  let a = Hash.of_string "a" and b = Hash.of_string "b" in
  check "compare/equal agree" true (Hash.compare a a = 0 && Hash.equal a a);
  check "compare antisym" true (Hash.compare a b = -Hash.compare b a)

(* --- Payload --------------------------------------------------------------- *)

let test_payload_items () =
  check_int "180 bytes is one item" 1
    (Payload.item_count (Payload.make ~id:1 ~size_bytes:180));
  check_int "empty has no items" 0 (Payload.item_count (Payload.empty ~id:1));
  check_int "1.8kB is 10 items" 10
    (Payload.item_count (Payload.make ~id:1 ~size_bytes:1_800));
  check_int "partial item rounds down" 0
    (Payload.item_count (Payload.make ~id:1 ~size_bytes:179))

let test_payload_negative_rejected () =
  Alcotest.check_raises "negative size" (Invalid_argument "Payload.make: negative size")
    (fun () -> ignore (Payload.make ~id:1 ~size_bytes:(-1)))

let test_payload_equal () =
  check "same id+size equal" true
    (Payload.equal (Payload.make ~id:3 ~size_bytes:5) (Payload.make ~id:3 ~size_bytes:5));
  check "different id differs" false
    (Payload.equal (Payload.make ~id:3 ~size_bytes:5) (Payload.make ~id:4 ~size_bytes:5))

(* --- Block ------------------------------------------------------------------ *)

let test_genesis () =
  check_int "height 0" 0 Block.genesis.Block.height;
  check_int "view 0" 0 Block.genesis.Block.view;
  check "parent is null" true (Hash.equal Block.genesis.Block.parent Hash.null);
  check "is_genesis" true (Block.is_genesis Block.genesis)

let test_block_create () =
  let b = Test_support.Builders.block ~view:1 ~parent:Block.genesis () in
  check_int "height is parent + 1" 1 b.Block.height;
  check "extends genesis" true
    (Block.extends_hash b ~parent_hash:Block.genesis.Block.hash);
  check "not genesis" false (Block.is_genesis b)

let test_block_view_must_grow () =
  let b = Test_support.Builders.block ~view:5 ~parent:Block.genesis () in
  Alcotest.check_raises "child view must exceed parent's"
    (Invalid_argument "Block.create: view must exceed the parent's view")
    (fun () -> ignore (Test_support.Builders.block ~view:5 ~parent:b ()))

let test_block_hash_binds_fields () =
  let b1 = Test_support.Builders.block ~view:1 ~parent:Block.genesis () in
  let b2 = Test_support.Builders.block ~view:2 ~parent:Block.genesis () in
  let b3 =
    Test_support.Builders.block ~view:1 ~payload_id:99 ~parent:Block.genesis ()
  in
  check "view changes hash" false (Block.equal b1 b2);
  check "payload changes hash" false (Block.equal b1 b3);
  check "same everything same hash" true
    (Block.equal b1 (Test_support.Builders.block ~view:1 ~parent:Block.genesis ()))

let test_equivocation () =
  let a = Test_support.Builders.block ~view:3 ~parent:Block.genesis () in
  let parent = Test_support.Builders.block ~view:1 ~parent:Block.genesis () in
  let b = Test_support.Builders.block ~view:3 ~parent () in
  let c = Test_support.Builders.block ~view:3 ~payload_id:7 ~parent:Block.genesis () in
  check "same view different parent equivocates" true (Block.equivocates a b);
  check "same view different payload equivocates" true (Block.equivocates a c);
  check "identical blocks do not equivocate" false
    (Block.equivocates a
       (Test_support.Builders.block ~view:3 ~parent:Block.genesis ()));
  let later = Test_support.Builders.block ~view:4 ~parent:Block.genesis () in
  check "different views never equivocate" false (Block.equivocates a later)

(* --- Validator set ----------------------------------------------------------- *)

let test_quorums () =
  let vs = Validator_set.make 4 in
  check_int "f for n=4" 1 vs.Validator_set.f;
  check_int "quorum for n=4" 3 (Validator_set.quorum vs);
  check_int "weak quorum for n=4" 2 (Validator_set.weak_quorum vs);
  let vs100 = Validator_set.make 100 in
  check_int "f for n=100" 33 vs100.Validator_set.f;
  check_int "quorum for n=100" 67 (Validator_set.quorum vs100)

let test_quorum_intersection () =
  (* Any two quorums intersect in at least f + 1 nodes. *)
  List.iter
    (fun n ->
      let vs = Validator_set.make n in
      let q = Validator_set.quorum vs in
      check ("intersection for n=" ^ string_of_int n) true
        ((2 * q) - n >= vs.Validator_set.f + 1))
    [ 1; 2; 3; 4; 5; 7; 10; 13; 50; 100; 199; 200; 301 ]

let test_membership () =
  let vs = Validator_set.make 4 in
  check "0 member" true (Validator_set.is_member vs 0);
  check "3 member" true (Validator_set.is_member vs 3);
  check "4 not member" false (Validator_set.is_member vs 4);
  check "-1 not member" false (Validator_set.is_member vs (-1))

(* --- Wire sizes ----------------------------------------------------------------- *)

let test_wire_sizes () =
  check "vote is a small message" true (Wire_size.vote < 300);
  check_int "block adds payload" (Wire_size.block_header + 1_000)
    (Wire_size.block ~payload_bytes:1_000);
  let c10 = Wire_size.certificate ~signers:10 in
  let c20 = Wire_size.certificate ~signers:20 in
  check "certificate linear in signers" true
    (c20 - c10 = 10 * (Wire_size.signature + Wire_size.node_id))

let () =
  Alcotest.run "types"
    [
      ( "hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "distinguishes" `Quick test_hash_distinguishes;
          Alcotest.test_case "null" `Quick test_hash_null;
          Alcotest.test_case "hex" `Quick test_hash_hex;
          Alcotest.test_case "compare" `Quick test_hash_compare_consistent;
        ] );
      ( "payload",
        [
          Alcotest.test_case "item counting" `Quick test_payload_items;
          Alcotest.test_case "negative rejected" `Quick test_payload_negative_rejected;
          Alcotest.test_case "equality" `Quick test_payload_equal;
        ] );
      ( "block",
        [
          Alcotest.test_case "genesis" `Quick test_genesis;
          Alcotest.test_case "create" `Quick test_block_create;
          Alcotest.test_case "view must grow" `Quick test_block_view_must_grow;
          Alcotest.test_case "hash binds fields" `Quick test_block_hash_binds_fields;
          Alcotest.test_case "equivocation" `Quick test_equivocation;
        ] );
      ( "validator-set",
        [
          Alcotest.test_case "quorums" `Quick test_quorums;
          Alcotest.test_case "intersection" `Quick test_quorum_intersection;
          Alcotest.test_case "membership" `Quick test_membership;
        ] );
      ("wire", [ Alcotest.test_case "sizes" `Quick test_wire_sizes ]);
    ]
