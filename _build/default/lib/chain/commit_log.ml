open Bft_types

exception Safety_violation of string

type t = {
  mutable chain : Block.t array;  (* chain.(h) is the block at height h *)
  mutable len : int;  (* filled prefix: heights 0 .. len-1 *)
  on_commit : Block.t -> unit;
}

let create ?(on_commit = fun _ -> ()) () =
  let chain = Array.make 64 Block.genesis in
  { chain; len = 1; on_commit }

let ensure_capacity t h =
  if h >= Array.length t.chain then begin
    let bigger = Array.make (max (h + 1) (2 * Array.length t.chain)) Block.genesis in
    Array.blit t.chain 0 bigger 0 t.len;
    t.chain <- bigger
  end

let at_height t h = if h >= 0 && h < t.len then Some t.chain.(h) else None
let last t = t.chain.(t.len - 1)
let length t = t.len - 1

let is_committed t hash =
  let rec scan h =
    h >= 0 && (Hash.equal t.chain.(h).Block.hash hash || scan (h - 1))
  in
  scan (t.len - 1)

let commit t store (b : Block.t) =
  let open Block in
  if b.height < t.len then begin
    (* Already covered: must agree with what we committed at that height. *)
    if not (Hash.equal t.chain.(b.height).hash b.hash) then
      raise
        (Safety_violation
           (Format.asprintf "conflicting commit at height %d: %a vs %a"
              b.height Block.pp t.chain.(b.height) Block.pp b));
    []
  end
  else begin
    (* Collect the uncommitted suffix ending at b, oldest first. *)
    let rec ancestors acc (cur : Block.t) =
      if cur.height < t.len then begin
        if not (Hash.equal t.chain.(cur.height).hash cur.hash) then
          raise
            (Safety_violation
               (Format.asprintf
                  "commit of %a forks from committed %a at height %d" Block.pp
                  b Block.pp t.chain.(cur.height) cur.height));
        acc
      end
      else
        match Block_store.find store cur.parent with
        | None ->
            invalid_arg
              (Format.asprintf "Commit_log.commit: missing ancestor of %a"
                 Block.pp cur)
        | Some p -> ancestors (cur :: acc) p
    in
    let newly = ancestors [] b in
    ensure_capacity t b.height;
    List.iter
      (fun (blk : Block.t) ->
        t.chain.(blk.height) <- blk;
        t.len <- blk.height + 1;
        t.on_commit blk)
      newly;
    newly
  end

let to_list t = Array.to_list (Array.sub t.chain 0 t.len)
