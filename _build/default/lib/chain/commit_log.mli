(** A node's committed chain.

    Committing a block commits its uncommitted ancestors first (the paper's
    indirect commit), so the log is always a chain extending genesis.  The
    log refuses inconsistent commits loudly: a conflicting commit at an
    already-filled height raises {!Safety_violation}, which is exactly the
    condition the SMR safety property forbids — tests rely on this being
    impossible to trigger through any protocol execution. *)

open Bft_types

exception Safety_violation of string

type t

(** [create ~on_commit] — [on_commit] fires once per block in chain order. *)
val create : ?on_commit:(Block.t -> unit) -> unit -> t

(** [commit t store b] commits [b] and any uncommitted ancestors found in
    [store].  Returns the list of newly committed blocks in chain order
    (empty if [b] was already committed).  Raises [Safety_violation] on a
    conflicting commit and [Invalid_argument] when an ancestor is missing
    from [store]. *)
val commit : t -> Block_store.t -> Block.t -> Block.t list

val is_committed : t -> Hash.t -> bool
val last : t -> Block.t  (** Highest committed block; genesis initially. *)

val length : t -> int  (** Committed blocks, genesis excluded. *)

val at_height : t -> int -> Block.t option
val to_list : t -> Block.t list  (** Genesis first. *)
