lib/chain/block_store.mli: Bft_types Block Hash
