lib/chain/commit_log.ml: Array Bft_types Block Block_store Format Hash List
