lib/chain/block_store.ml: Bft_types Block Hash Hashtbl List Option
