lib/chain/commit_log.mli: Bft_types Block Block_store Hash
