lib/runtime/config.mli: Bft_workload Byzantine Format Protocol_kind
