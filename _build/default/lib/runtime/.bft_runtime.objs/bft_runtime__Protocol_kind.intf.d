lib/runtime/protocol_kind.mli: Format
