lib/runtime/metrics.ml: Array Bft_chain Bft_crypto Bft_stats Bft_types Block Float Format Hash Hashtbl Int List Option Payload
