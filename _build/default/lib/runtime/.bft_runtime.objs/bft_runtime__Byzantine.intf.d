lib/runtime/byzantine.mli: Format
