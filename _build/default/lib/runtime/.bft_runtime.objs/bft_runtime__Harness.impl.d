lib/runtime/harness.ml: Bft_sim Bft_stats Bft_types Bft_workload Byzantine Config Env Hotstuff Jolteon List Logs Metrics Moonshot Payload Protocol_kind Validator_set
