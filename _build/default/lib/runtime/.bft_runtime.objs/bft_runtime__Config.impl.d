lib/runtime/config.ml: Bft_workload Byzantine Format List Protocol_kind
