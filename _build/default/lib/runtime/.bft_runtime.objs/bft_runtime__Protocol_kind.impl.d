lib/runtime/protocol_kind.ml: Format
