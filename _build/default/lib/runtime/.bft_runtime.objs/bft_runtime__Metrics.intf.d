lib/runtime/metrics.mli: Bft_types Block
