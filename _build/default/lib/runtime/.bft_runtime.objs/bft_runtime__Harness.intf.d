lib/runtime/harness.mli: Bft_types Config Logs Metrics
