lib/runtime/byzantine.ml: Format Printf
