(** Byzantine behaviours beyond the silent (crash-like) adversary of the
    paper's failure experiments.

    Behaviours are applied without touching protocol logic: either via the
    protocol's own [equivocate] mode or by wrapping the node's environment
    ({!Bft_types.Env.with_outgoing_filter} / [with_outgoing_delay]).  All of
    them stay within the threat model — at most [f] nodes total may be
    assigned a behaviour or be silent. *)

type t =
  | Silent  (** Sends nothing at all (equivalent to a crash). *)
  | Equivocate
      (** Proposes conflicting blocks to the two halves of the network. *)
  | Withhold_votes
      (** Participates (proposes, times out) but never votes — starves
          certificates of one contribution. *)
  | Delay_all of float
      (** Holds every outgoing message for the given ms (a lagging or
          throttling adversary); safe but degrades others' view of it. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
