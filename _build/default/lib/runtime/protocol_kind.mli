(** The four protocols under evaluation. *)

type t =
  | Simple_moonshot
  | Pipelined_moonshot
  | Commit_moonshot
  | Jolteon
  | Hotstuff  (** Chained HotStuff (3-chain) — extra baseline, not in the paper's evaluation. *)

(** Every implemented protocol. *)
val all : t list

(** The four protocols of the paper's evaluation (SM, PM, CM, J). *)
val paper : t list
val name : t -> string
val short_name : t -> string  (** The paper's abbreviations: SM, PM, CM, J. *)

val of_name : string -> t option
val pp : Format.formatter -> t -> unit
