type t =
  | Simple_moonshot
  | Pipelined_moonshot
  | Commit_moonshot
  | Jolteon
  | Hotstuff

let paper = [ Simple_moonshot; Pipelined_moonshot; Commit_moonshot; Jolteon ]
let all = paper @ [ Hotstuff ]

let name = function
  | Simple_moonshot -> "simple-moonshot"
  | Pipelined_moonshot -> "pipelined-moonshot"
  | Commit_moonshot -> "commit-moonshot"
  | Jolteon -> "jolteon"
  | Hotstuff -> "hotstuff"

let short_name = function
  | Simple_moonshot -> "SM"
  | Pipelined_moonshot -> "PM"
  | Commit_moonshot -> "CM"
  | Jolteon -> "J"
  | Hotstuff -> "HS"

let of_name = function
  | "simple-moonshot" | "simple" | "SM" | "sm" -> Some Simple_moonshot
  | "pipelined-moonshot" | "pipelined" | "PM" | "pm" -> Some Pipelined_moonshot
  | "commit-moonshot" | "commit" | "CM" | "cm" -> Some Commit_moonshot
  | "jolteon" | "J" | "j" -> Some Jolteon
  | "hotstuff" | "HS" | "hs" -> Some Hotstuff
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
