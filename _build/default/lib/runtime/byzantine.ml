type t = Silent | Equivocate | Withhold_votes | Delay_all of float

let name = function
  | Silent -> "silent"
  | Equivocate -> "equivocate"
  | Withhold_votes -> "withhold-votes"
  | Delay_all d -> Printf.sprintf "delay-all(%.0fms)" d

let pp ppf t = Format.pp_print_string ppf (name t)
