lib/crypto/accumulator.mli:
