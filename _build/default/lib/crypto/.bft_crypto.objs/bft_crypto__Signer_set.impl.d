lib/crypto/signer_set.ml: Bytes Char
