lib/crypto/signature.mli: Bft_types Format
