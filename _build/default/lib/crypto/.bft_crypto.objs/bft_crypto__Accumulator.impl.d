lib/crypto/accumulator.ml: Hashtbl Signer_set
