lib/crypto/signer_set.mli:
