lib/crypto/signature.ml: Bft_types Format
