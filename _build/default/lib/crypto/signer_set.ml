type t = { bits : Bytes.t; n : int; mutable count : int }

let create ~n =
  if n < 0 then invalid_arg "Signer_set.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; count = 0 }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Signer_set: signer out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t i =
  check t i;
  if mem t i then false
  else begin
    let byte = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))));
    t.count <- t.count + 1;
    true
  end

let count t = t.count

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mem t i then i :: acc else acc) in
  go (t.n - 1) []

let copy t = { bits = Bytes.copy t.bits; n = t.n; count = t.count }
