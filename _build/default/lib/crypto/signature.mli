(** Simulated digital signatures.

    The simulator's channels are authenticated and the adversary is
    computationally bounded, so unforgeability is enforced by construction: a
    signature is a token binding a signer to a digest, and only the node
    behaviour code for that signer can mint it (the engine delivers messages
    with their true sender).  Verification checks the binding; wire cost uses
    ED25519 sizes via {!Bft_types.Wire_size}. *)

type t

(** [sign ~signer digest] produces [signer]'s signature over [digest]. *)
val sign : signer:int -> Bft_types.Hash.t -> t

val signer : t -> int

(** [verify t ~signer digest] checks that [t] is [signer]'s signature over
    [digest]. *)
val verify : t -> signer:int -> Bft_types.Hash.t -> bool

val pp : Format.formatter -> t -> unit
