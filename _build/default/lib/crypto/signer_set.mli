(** A deduplicated set of signer identities, as accumulated while collecting
    votes or timeout messages toward a certificate. *)

type t

(** [create ~n] for signers drawn from [0 .. n-1]. *)
val create : n:int -> t

(** [add t i] records signer [i]; returns [false] when [i] was already
    present.  Raises [Invalid_argument] when [i] is out of range. *)
val add : t -> int -> bool

val mem : t -> int -> bool
val count : t -> int
val to_list : t -> int list
val copy : t -> t
