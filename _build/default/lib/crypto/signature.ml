type t = { by : int; digest : Bft_types.Hash.t }

let sign ~signer digest = { by = signer; digest }
let signer t = t.by

let verify t ~signer digest =
  t.by = signer && Bft_types.Hash.equal t.digest digest

let pp ppf t =
  Format.fprintf ppf "sig(%d over %a)" t.by Bft_types.Hash.pp t.digest
