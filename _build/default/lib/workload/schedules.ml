type t = Round_robin | Best_case | Worst_moonshot | Worst_jolteon

let all = [ Round_robin; Best_case; Worst_moonshot; Worst_jolteon ]

let name = function
  | Round_robin -> "round-robin"
  | Best_case -> "B"
  | Worst_moonshot -> "WM"
  | Worst_jolteon -> "WJ"

let of_name = function
  | "round-robin" -> Some Round_robin
  | "B" | "best" -> Some Best_case
  | "WM" | "worst-moonshot" -> Some Worst_moonshot
  | "WJ" | "worst-jolteon" -> Some Worst_jolteon
  | _ -> None

let check ~n ~f' =
  if n < 1 then invalid_arg "Schedules: n < 1";
  if f' < 0 || f' > (n - 1) / 3 then
    invalid_arg "Schedules: f' must satisfy 0 <= f' <= (n - 1) / 3"

let byzantine_ids ~n ~f' =
  check ~n ~f';
  List.init f' (fun i -> n - f' + i)

let is_byzantine ~n ~f' i =
  check ~n ~f';
  i >= n - f'

(* Interleave leaders drawn from the honest pool (0 .. n-f'-1, in order) and
   the Byzantine pool (n-f' .. n-1, in order) according to a per-schedule
   pattern, then append whatever remains of each pool. *)
let build ~n ~f' ~pattern_honest_run ~pattern_byz_run ~pattern_cycles =
  let arr = Array.make n 0 in
  let next_honest = ref 0 and next_byz = ref (n - f') and pos = ref 0 in
  let push id =
    arr.(!pos) <- id;
    incr pos
  in
  for _ = 1 to pattern_cycles do
    for _ = 1 to pattern_honest_run do
      push !next_honest;
      incr next_honest
    done;
    for _ = 1 to pattern_byz_run do
      push !next_byz;
      incr next_byz
    done
  done;
  while !next_honest < n - f' do
    push !next_honest;
    incr next_honest
  done;
  while !next_byz < n do
    push !next_byz;
    incr next_byz
  done;
  assert (!pos = n);
  arr

let arrangement t ~n ~f' =
  check ~n ~f';
  match t with
  | Round_robin -> Array.init n (fun i -> i)
  | Best_case ->
      (* All honest, then all Byzantine: identity, given Byzantine ids are
         the tail. *)
      Array.init n (fun i -> i)
  | Worst_moonshot ->
      build ~n ~f' ~pattern_honest_run:1 ~pattern_byz_run:1 ~pattern_cycles:f'
  | Worst_jolteon ->
      build ~n ~f' ~pattern_honest_run:2 ~pattern_byz_run:1 ~pattern_cycles:f'

let leader_of t ~n ~f' =
  let arr = arrangement t ~n ~f' in
  fun view -> arr.((view - 1) mod n)
