lib/workload/schedules.ml: Array List
