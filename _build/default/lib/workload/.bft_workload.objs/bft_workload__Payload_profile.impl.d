lib/workload/payload_profile.ml: Float Printf
