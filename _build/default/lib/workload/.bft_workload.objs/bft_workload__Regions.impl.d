lib/workload/regions.ml: Array Bft_sim Format List
