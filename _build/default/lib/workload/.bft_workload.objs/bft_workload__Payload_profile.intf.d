lib/workload/payload_profile.mli:
