lib/workload/schedules.mli:
