lib/workload/regions.mli: Bft_sim Format
