type region = Us_east_1 | Us_west_1 | Eu_north_1 | Ap_northeast_1 | Ap_southeast_2

let all = [ Us_east_1; Us_west_1; Eu_north_1; Ap_northeast_1; Ap_southeast_2 ]
let count = 5

let name = function
  | Us_east_1 -> "us-east-1"
  | Us_west_1 -> "us-west-1"
  | Eu_north_1 -> "eu-north-1"
  | Ap_northeast_1 -> "ap-northeast-1"
  | Ap_southeast_2 -> "ap-southeast-2"

let index = function
  | Us_east_1 -> 0
  | Us_west_1 -> 1
  | Eu_north_1 -> 2
  | Ap_northeast_1 -> 3
  | Ap_southeast_2 -> 4

(* Table II of the paper: observed 90th-percentile latencies (ms), source
   rows, destination columns, in the order of [all]. *)
let table =
  [|
    [| 5.23; 61.87; 113.78; 167.6; 197.42 |];
    [| 62.88; 3.69; 172.17; 109.89; 141.54 |];
    [| 114.09; 173.31; 5.48; 248.67; 271.68 |];
    [| 168.04; 109.94; 251.63; 5.99; 111.67 |];
    [| 199.54; 146.06; 272.31; 112.11; 4.53 |];
  |]

let latency_ms ~src ~dst = table.(index src).(index dst)

let of_index = function
  | 0 -> Us_east_1
  | 1 -> Us_west_1
  | 2 -> Eu_north_1
  | 3 -> Ap_northeast_1
  | 4 -> Ap_southeast_2
  | _ -> invalid_arg "Regions.of_index"

let region_of_node i = of_index (i mod count)

let latency_model () =
  Bft_sim.Latency.Matrix
    { table; region_of = (fun node -> node mod count) }

let bandwidth_bps = 10e9

let print_table ppf =
  Format.fprintf ppf "%-16s" "Source\\Dest";
  List.iter (fun r -> Format.fprintf ppf "%-16s" (name r)) all;
  Format.fprintf ppf "@.";
  List.iter
    (fun src ->
      Format.fprintf ppf "%-16s" (name src);
      List.iter
        (fun dst -> Format.fprintf ppf "%-16.2f" (latency_ms ~src ~dst))
        all;
      Format.fprintf ppf "@.")
    all
