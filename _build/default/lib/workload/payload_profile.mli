(** The payload sizes exercised in the paper's evaluation. *)

(** Figure 6 / Table III grid: empty to 1.8 MB, decade steps
    (0, 1.8 kB, 18 kB, 180 kB, 1.8 MB) — multiples of the 180-byte item. *)
val happy_path_sizes : int list

(** Figure 8 extension for the 200-node saturation sweep: up to 9 MB. *)
val saturation_sizes : int list

(** Human-readable size, e.g. ["18kB"], ["1.8MB"]. *)
val label : int -> string
