let happy_path_sizes = [ 0; 1_800; 18_000; 180_000; 1_800_000 ]

let saturation_sizes =
  [ 0; 1_800; 18_000; 180_000; 900_000; 1_800_000; 3_600_000; 9_000_000 ]

let label bytes =
  if bytes = 0 then "empty"
  else if bytes < 1_000 then Printf.sprintf "%dB" bytes
  else if bytes < 1_000_000 then
    let k = float_of_int bytes /. 1_000. in
    if Float.is_integer k then Printf.sprintf "%.0fkB" k
    else Printf.sprintf "%.1fkB" k
  else
    let m = float_of_int bytes /. 1_000_000. in
    if Float.is_integer m then Printf.sprintf "%.0fMB" m
    else Printf.sprintf "%.1fMB" m
