type t = { n : int; f : int }

let make n =
  if n < 1 then invalid_arg "Validator_set.make: need at least one node";
  { n; f = (n - 1) / 3 }

let quorum t = t.n - t.f
let weak_quorum t = t.f + 1
let is_member t i = i >= 0 && i < t.n
let pp ppf t = Format.fprintf ppf "validators(n=%d, f=%d)" t.n t.f
