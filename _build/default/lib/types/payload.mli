(** Block payloads.

    As in the paper's evaluation, leaders synthesize a parametrically sized
    payload during block creation instead of pulling transactions from a
    mempool.  Payload bytes are never materialised; a payload is described by
    its identifier and size, which is all the network model and the metrics
    need.  Individual payload items are 180 bytes, matching the paper. *)

type t = { id : int; size_bytes : int }

(** Size in bytes of one payload item (a transaction digest record). *)
val item_size : int

(** [make ~id ~size_bytes] describes a payload of [size_bytes] bytes.
    Raises [Invalid_argument] if [size_bytes < 0]. *)
val make : id:int -> size_bytes:int -> t

val empty : id:int -> t

(** Number of 180-byte items the payload holds (rounded down). *)
val item_count : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
