let sig_verify_ms = 0.06
let hash_ms_per_byte = 1e-6
let cache_check_ms = 0.002
let verify_signatures k = float_of_int k *. sig_verify_ms
let hash_payload bytes = float_of_int bytes *. hash_ms_per_byte
