(** Message-processing CPU cost model.

    The evaluation hardware (m5.large, Intel Xeon Platinum 8000, 2 vCPU)
    spends real time verifying ED25519 signatures and hashing payloads; at
    n = 200 a certificate carries 134 signatures, so this cost scales with
    the network and is what bends the paper's Figure 6 curves downward as n
    grows.  Protocol message types map to costs using these constants; the
    simulator serializes each node's processing on a per-node CPU queue.

    Costs are amortized the way real implementations amortize them: a
    certificate already assembled locally from verified votes (or received
    twice) costs only a cache lookup, not a re-verification. *)

(** One ED25519 signature verification, ms. *)
val sig_verify_ms : float

(** Hashing / copying payload bytes, ms per byte (about 1 GB/s). *)
val hash_ms_per_byte : float

(** Deduplication table lookup for an already-known certificate, ms. *)
val cache_check_ms : float

(** [verify_signatures k] — cost of verifying [k] fresh signatures. *)
val verify_signatures : int -> float

(** [hash_payload bytes] — cost of hashing a payload of [bytes] bytes. *)
val hash_payload : int -> float
