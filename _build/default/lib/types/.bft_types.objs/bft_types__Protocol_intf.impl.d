lib/types/protocol_intf.ml: Env
