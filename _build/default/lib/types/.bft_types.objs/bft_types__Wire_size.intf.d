lib/types/wire_size.mli:
