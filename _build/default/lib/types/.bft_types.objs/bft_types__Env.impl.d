lib/types/env.ml: Block Payload Validator_set
