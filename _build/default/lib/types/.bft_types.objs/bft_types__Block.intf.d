lib/types/block.mli: Format Hash Payload
