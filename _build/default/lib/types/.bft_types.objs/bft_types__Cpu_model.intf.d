lib/types/cpu_model.mli:
