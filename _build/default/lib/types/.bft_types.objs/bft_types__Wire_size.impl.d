lib/types/wire_size.ml:
