lib/types/cpu_model.ml:
