lib/types/hash.mli: Format
