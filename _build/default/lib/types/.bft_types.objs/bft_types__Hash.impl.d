lib/types/hash.ml: Char Format Int64 List Printf String
