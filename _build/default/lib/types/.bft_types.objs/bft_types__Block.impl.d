lib/types/block.ml: Format Hash Int64 Payload
