lib/types/validator_set.ml: Format
