lib/types/payload.ml: Format
