lib/types/env.mli: Block Payload Validator_set
