lib/types/payload.mli: Format
