lib/types/validator_set.mli: Format
