(** Wire-size model.

    Message sizes drive the bandwidth (serialization-delay) component of the
    network model, which in turn produces the large-vs-small message latency
    split (beta vs rho, Section V) that Commit Moonshot exploits.  Sizes use
    the constants of the paper's implementation: ED25519 signatures and
    certificates built from arrays of signatures. *)

val signature : int  (** ED25519 signature: 64 bytes. *)

val hash : int  (** Production digest: 32 bytes. *)

val node_id : int  (** 4 bytes. *)

val view : int  (** 8 bytes. *)

val tag : int  (** Message/vote discriminant: 1 byte. *)

(** Size of a block header: hash, parent hash, view, height, proposer,
    payload descriptor. *)
val block_header : int

(** [block ~payload_bytes] is the header plus the payload itself. *)
val block : payload_bytes:int -> int

(** A signed vote: header-bearing vote for a block hash in a view. *)
val vote : int

(** [certificate ~signers] is a block certificate carrying [signers]
    signatures plus the certified block header and view. *)
val certificate : signers:int -> int
