(** The validator set and its quorum arithmetic.

    The system runs [n] nodes of which up to [f < n/3] may be Byzantine.  A
    quorum is [n - f] nodes, which equals the paper's [2f + 1] when
    [n = 3f + 1] (Section II) and always satisfies the quorum-intersection
    property (any two quorums share at least [f + 1] nodes). *)

type t = private { n : int; f : int }

(** [make n] for a system of [n >= 1] nodes; [f = (n - 1) / 3].
    Raises [Invalid_argument] if [n < 1]. *)
val make : int -> t

(** Size of a quorum: [n - f]. *)
val quorum : t -> int

(** Size of the weak quorum [f + 1] that guarantees at least one honest
    member (used by Bracha-style timeout amplification). *)
val weak_quorum : t -> int

(** [is_member t i] is true when [0 <= i < n]. *)
val is_member : t -> int -> bool

val pp : Format.formatter -> t -> unit
