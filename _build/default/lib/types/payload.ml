type t = { id : int; size_bytes : int }

let item_size = 180

let make ~id ~size_bytes =
  if size_bytes < 0 then invalid_arg "Payload.make: negative size";
  { id; size_bytes }

let empty ~id = { id; size_bytes = 0 }
let item_count t = t.size_bytes / item_size
let equal a b = a.id = b.id && a.size_bytes = b.size_bytes
let pp ppf t = Format.fprintf ppf "payload(id=%d, %dB)" t.id t.size_bytes
