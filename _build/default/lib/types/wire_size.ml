let signature = 64
let hash = 32
let node_id = 4
let view = 8
let tag = 1

(* hash + parent + view + height + proposer + payload (id + size) *)
let block_header = hash + hash + view + view + node_id + 16
let block ~payload_bytes = block_header + payload_bytes
let vote = tag + block_header + view + signature + node_id
let certificate ~signers = block_header + view + tag + (signers * (signature + node_id))
