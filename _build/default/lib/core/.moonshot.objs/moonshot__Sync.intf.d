lib/core/sync.mli: Bft_types Block Env Hash Node_core
