lib/core/sync.ml: Bft_types Block Env Hash List Node_core
