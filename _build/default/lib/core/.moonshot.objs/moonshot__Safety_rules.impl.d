lib/core/safety_rules.ml: Bft_types Block Cert Tc
