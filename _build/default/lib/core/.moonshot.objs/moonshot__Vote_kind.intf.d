lib/core/vote_kind.mli: Format
