lib/core/proposal_sender.mli: Bft_types Block Env Message
