lib/core/theory.mli: Format
