lib/core/tc.mli: Cert Format
