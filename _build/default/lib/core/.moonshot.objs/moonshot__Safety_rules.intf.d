lib/core/safety_rules.mli: Bft_types Block Cert Tc
