lib/core/proposal_sender.ml: Bft_types Block Env Payload
