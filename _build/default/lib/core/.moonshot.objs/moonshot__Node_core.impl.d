lib/core/node_core.ml: Bft_chain Bft_crypto Bft_types Block Block_store Cert Commit_log Env Hash Hashtbl List Option Stdlib Vote_kind
