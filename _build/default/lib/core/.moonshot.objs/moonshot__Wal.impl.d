lib/core/wal.ml: Bft_types Block Cert
