lib/core/tc.ml: Bft_types Cert Format Wire_size
