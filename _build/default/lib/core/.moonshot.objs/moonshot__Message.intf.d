lib/core/message.mli: Bft_types Block Cert Format Hash Tc Vote_kind
