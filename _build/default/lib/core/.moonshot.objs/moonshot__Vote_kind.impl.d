lib/core/vote_kind.ml: Format Int
