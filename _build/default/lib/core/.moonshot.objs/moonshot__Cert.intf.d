lib/core/cert.mli: Bft_types Block Format Vote_kind
