lib/core/node_core.mli: Bft_chain Bft_types Block Cert Env Hash Vote_kind
