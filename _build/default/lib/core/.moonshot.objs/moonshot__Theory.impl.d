lib/core/theory.ml: Format List
