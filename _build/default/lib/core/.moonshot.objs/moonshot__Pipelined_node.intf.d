lib/core/pipelined_node.mli: Bft_chain Bft_types Cert Env Message Wal
