lib/core/message.ml: Bft_types Block Cert Cpu_model Format Hash List Payload Tc Vote_kind Wire_size
