lib/core/wal.mli: Bft_types Block Cert
