lib/core/simple_node.ml: Bft_crypto Bft_types Block Cert Env Hashtbl List Message Node_core Option Proposal_sender Safety_rules Sync Tc Vote_kind
