lib/core/cert.ml: Bft_types Block Format Int Vote_kind Wire_size
