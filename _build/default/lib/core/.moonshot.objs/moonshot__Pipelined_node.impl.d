lib/core/pipelined_node.ml: Bft_chain Bft_crypto Bft_types Block Cert Env Hash Hashtbl List Message Node_core Option Proposal_sender Safety_rules Sync Tc Vote_kind Wal
