open Bft_types

let valid_proposal_block ~leader_of ~view (b : Block.t) =
  b.Block.view = view && b.Block.proposer = leader_of view

let lock_certifies_parent ~(lock : Cert.t) ~view (b : Block.t) =
  lock.Cert.view = view - 1 && Cert.certifies_parent_of lock b

(* --- Simple Moonshot --------------------------------------------------- *)

let simple_opt_vote ~lock ~view ~voted ~timed_out ~block =
  (not voted) && (not timed_out)
  && block.Block.view = view
  && lock_certifies_parent ~lock ~view block

let simple_normal_vote ~lock ~view ~voted ~timed_out ~block ~cert =
  (not voted) && (not timed_out)
  && block.Block.view = view
  && Cert.rank_geq cert lock
  && Cert.certifies_parent_of cert block

(* --- Pipelined / Commit Moonshot --------------------------------------- *)

let pipelined_opt_vote ~lock ~view ~timeout_view ~voted_opt ~voted_main ~block =
  timeout_view < view - 1
  && voted_opt = None && (not voted_main)
  && block.Block.view = view
  && lock_certifies_parent ~lock ~view block

let pipelined_normal_vote ~view ~timeout_view ~voted_opt ~voted_main ~block ~cert
    =
  let no_equivocating_opt_vote =
    match voted_opt with
    | None -> true
    | Some b -> Block.equal b block
  in
  timeout_view < view && (not voted_main) && no_equivocating_opt_vote
  && block.Block.view = view
  && cert.Cert.view = view - 1
  && Cert.certifies_parent_of cert block

let pipelined_fb_vote ~view ~timeout_view ~voted_main ~block ~cert ~tc =
  timeout_view < view && (not voted_main)
  && block.Block.view = view
  && tc.Tc.view = view - 1
  && Cert.certifies_parent_of cert block
  && cert.Cert.view >= Tc.high_cert_view tc

(* --- Commit Moonshot ---------------------------------------------------- *)

let direct_precommit ~view ~timeout_view ~cert_view =
  view <= cert_view && timeout_view < cert_view

let indirect_precommit ~timeout_view ~cert_view ~voted_descendant =
  voted_descendant && timeout_view < cert_view
