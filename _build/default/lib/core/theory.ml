type model = Partially_synchronous | Synchronous
type responsiveness = Not_responsive | Consecutive_honest | Standard

type row = {
  name : string;
  model : model;
  min_commit_latency : string;
  min_block_period : string;
  reorg_resilient : bool;
  view_length : string;
  pipelined : bool;
  steady_state_cc : string;
  view_change_cc : string;
  responsiveness : responsiveness;
}

let psync = Partially_synchronous

let hotstuff =
  {
    name = "HotStuff";
    model = psync;
    min_commit_latency = "7d";
    min_block_period = "2d";
    reorg_resilient = false;
    view_length = "4D";
    pipelined = true;
    steady_state_cc = "O(n)";
    view_change_cc = "O(n)";
    responsiveness = Standard;
  }

let fast_hotstuff =
  {
    hotstuff with
    name = "Fast-HotStuff";
    min_commit_latency = "5d";
    view_change_cc = "O(n^2)";
  }

let jolteon = { fast_hotstuff with name = "Jolteon" }

let hotstuff2 =
  {
    fast_hotstuff with
    name = "HotStuff-2";
    view_length = "7D";
    view_change_cc = "O(n)";
  }

let pala =
  {
    name = "PaLa";
    model = psync;
    min_commit_latency = "4d";
    min_block_period = "2d";
    reorg_resilient = false;
    view_length = "5D";
    pipelined = true;
    steady_state_cc = "O(n^2)";
    view_change_cc = "O(n^2)";
    responsiveness = Standard;
  }

let icc =
  {
    pala with
    name = "ICC";
    min_commit_latency = "3d";
    view_length = "4D";
    pipelined = false;
  }

let simplex =
  {
    icc with
    name = "Simplex";
    view_length = "3D";
    steady_state_cc = "Unbounded";
    responsiveness = Not_responsive;
  }

let apollo =
  {
    name = "Apollo";
    model = Synchronous;
    min_commit_latency = "(f+1)d";
    min_block_period = "d";
    reorg_resilient = true;
    view_length = "4D";
    pipelined = false;
    steady_state_cc = "O(n)";
    view_change_cc = "O(n^2)";
    responsiveness = Not_responsive;
  }

let simple_moonshot =
  {
    name = "Simple Moonshot";
    model = psync;
    min_commit_latency = "3d";
    min_block_period = "d";
    reorg_resilient = true;
    view_length = "5D";
    pipelined = true;
    steady_state_cc = "O(n^2)";
    view_change_cc = "O(n^2)";
    responsiveness = Consecutive_honest;
  }

let pipelined_moonshot =
  { simple_moonshot with name = "Pipelined Moonshot"; view_length = "3D";
    responsiveness = Standard }

let commit_moonshot =
  { pipelined_moonshot with name = "Commit Moonshot"; pipelined = false }

let table1 =
  [
    hotstuff; fast_hotstuff; jolteon; hotstuff2; pala; icc; simplex; apollo;
    simple_moonshot; pipelined_moonshot; commit_moonshot;
  ]

let model_str = function Partially_synchronous -> "psync" | Synchronous -> "sync"

let resp_str = function
  | Not_responsive -> "-"
  | Consecutive_honest -> "consecutive-honest"
  | Standard -> "standard"

let print ppf =
  Format.fprintf ppf
    "%-19s %-6s %-8s %-7s %-6s %-5s %-5s %-10s %-10s %s@."
    "Protocol" "Model" "Commit" "Period" "Reorg" "View" "Pipe"
    "Steady-CC" "VC-CC" "Responsiveness";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-19s %-6s %-8s %-7s %-6s %-5s %-5s %-10s %-10s %s@." r.name
        (model_str r.model) r.min_commit_latency r.min_block_period
        (if r.reorg_resilient then "yes" else "no")
        r.view_length
        (if r.pipelined then "yes" else "no")
        r.steady_state_cc r.view_change_cc (resp_str r.responsiveness))
    table1

let moonshot_commit_hops = 3
let moonshot_block_period_hops = 1
let jolteon_commit_hops = 5
let jolteon_block_period_hops = 2
