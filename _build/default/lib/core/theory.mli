(** Table I of the paper: the theoretical comparison of chain-based
    rotating-leader BFT SMR protocols, as structured data plus a renderer.

    The Moonshot rows also serve as the specification the implementation is
    tested against (view-timer lengths, minimum latencies in the happy
    path). *)

type model = Partially_synchronous | Synchronous

type responsiveness = Not_responsive | Consecutive_honest | Standard

type row = {
  name : string;
  model : model;
  min_commit_latency : string;  (** In units of delta, e.g. ["3d"]. *)
  min_block_period : string;  (** Minimum view-change block period. *)
  reorg_resilient : bool;
  view_length : string;  (** In units of Delta, e.g. ["3D"]. *)
  pipelined : bool;
  steady_state_cc : string;  (** Communication complexity. *)
  view_change_cc : string;
  responsiveness : responsiveness;
}

(** All rows of Table I, in the paper's order. *)
val table1 : row list

(** The three rows contributed by this work. *)
val simple_moonshot : row

val pipelined_moonshot : row
val commit_moonshot : row
val jolteon : row

(** Render the table, one protocol per line. *)
val print : Format.formatter -> unit

(** {2 Specification constants used by tests} *)

(** Happy-path commit latency in message hops (3 = propose, vote, vote). *)
val moonshot_commit_hops : int

(** Happy-path block period in message hops (1 = a single proposal hop
    between consecutive honest proposals). *)
val moonshot_block_period_hops : int

val jolteon_commit_hops : int
val jolteon_block_period_hops : int
