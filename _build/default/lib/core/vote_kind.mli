(** The three vote types of Pipelined/Commit Moonshot (Section IV-A).

    Votes of different kinds may not be aggregated together.  Simple Moonshot
    uses a single untyped vote, represented here as [Normal]. *)

type t = Opt | Normal | Fallback

val equal : t -> t -> bool
val compare : t -> t -> int

(** Stable small integer for use in aggregation keys. *)
val to_tag : t -> int

val pp : Format.formatter -> t -> unit
