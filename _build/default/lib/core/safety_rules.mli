(** The voting rules of the Moonshot protocols, as pure predicates.

    Everything that decides whether a node may vote lives here, decoupled
    from message plumbing, so each clause of Figures 1 and 3 of the paper is
    unit-testable in isolation.  All predicates take the voter's local state
    as named arguments and the proposal's contents, and say whether the
    corresponding vote may be cast.

    Conventions: [view] is the voter's current view; [timeout_view] is the
    highest view the voter has sent a timeout message for ([0] when none,
    views being positive). *)

open Bft_types

(** Structural validity common to all proposals: the block was proposed for
    [view] by the leader of [view]. *)
val valid_proposal_block : leader_of:(int -> int) -> view:int -> Block.t -> bool

(** {1 Simple Moonshot (Figure 1)} — one vote per view, lock updated only on
    view entry, voting stops after a timeout for the current view. *)

(** Vote rule 2a: optimistic proposal [block] for [view] extending
    [block.parent]; requires the voter's lock to be a view-[view - 1]
    certificate for the parent. *)
val simple_opt_vote :
  lock:Cert.t -> view:int -> voted:bool -> timed_out:bool -> block:Block.t -> bool

(** Vote rule 2b: normal proposal [block] justified by [cert]; requires
    [cert >= lock] and [block] to directly extend the certified block. *)
val simple_normal_vote :
  lock:Cert.t ->
  view:int ->
  voted:bool ->
  timed_out:bool ->
  block:Block.t ->
  cert:Cert.t ->
  bool

(** {1 Pipelined / Commit Moonshot (Figure 3)} — at most one optimistic vote
    plus one normal-or-fallback vote per view. *)

(** Vote rule 2a: requires [timeout_view < view - 1], the lock to certify the
    parent at view [view - 1], and no vote of any kind cast in [view]. *)
val pipelined_opt_vote :
  lock:Cert.t ->
  view:int ->
  timeout_view:int ->
  voted_opt:Block.t option ->
  voted_main:bool ->
  block:Block.t ->
  bool

(** Vote rule 2b-i: normal proposal with a view-[view - 1] certificate for
    the direct parent; allowed after an optimistic vote only for the same
    block (never for an equivocating one). *)
val pipelined_normal_vote :
  view:int ->
  timeout_view:int ->
  voted_opt:Block.t option ->
  voted_main:bool ->
  block:Block.t ->
  cert:Cert.t ->
  bool

(** Vote rule 2b-ii: fallback proposal justified by [tc] for view
    [view - 1]; [cert] must rank at least as high as the highest certificate
    aggregated in [tc].  Notably the voter's own lock is {e not} consulted
    (Section IV-B explains why this is safe). *)
val pipelined_fb_vote :
  view:int ->
  timeout_view:int ->
  voted_main:bool ->
  block:Block.t ->
  cert:Cert.t ->
  tc:Tc.t ->
  bool

(** {1 Commit Moonshot (Figure 4)} *)

(** Direct pre-commit: on receiving a certificate for view [cert_view] while
    in a view [<= cert_view], having not timed out of [cert_view]. *)
val direct_precommit : view:int -> timeout_view:int -> cert_view:int -> bool

(** Indirect pre-commit: on receiving a certificate for an ancestor of a
    block already commit-voted for, having not timed out of its view.
    [voted_descendant] says whether some commit-voted block descends from the
    certified one. *)
val indirect_precommit :
  timeout_view:int -> cert_view:int -> voted_descendant:bool -> bool
