open Bft_types

type state = {
  cur_view : int;
  lock : Cert.t;
  timeout_view : int;
  voted_opt : Block.t option;
  voted_main : bool;
}

type t = { mutable latest : state option; mutable writes : int }

let create () = { latest = None; writes = 0 }

let record t state =
  t.latest <- Some state;
  t.writes <- t.writes + 1

let load t = t.latest
let writes t = t.writes
