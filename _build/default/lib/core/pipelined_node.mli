(** Pipelined Moonshot (Figure 3), optionally extended with the explicit
    pre-commit phase of Commit Moonshot (Figure 4) via [?precommit].

    The node is fully event-driven: the harness calls {!start} once and then
    {!handle} for every delivered message.  All other behaviour (view
    timers, optimistic proposals, certificate formation from multicast
    votes, Bracha-style timeout amplification) happens inside. *)

open Bft_types

type t

(** [create ?precommit ?equivocate ?lso env] — [precommit] (default
    [false]) enables Commit Moonshot's pre-commit votes and alternative
    commit rule; [equivocate] makes the node propose conflicting blocks to
    the two halves of the network when it leads (Byzantine behaviour for
    safety tests); [lso] (default [false]) selects the leader-speaks-once
    variant that skips the normal re-proposal after an optimistic proposal —
    Section III explains why this sacrifices reorg resilience.

    With [?wal], the node records its safety-critical state to the given
    write-ahead log before every binding action, and {!start} resumes from
    it when it already holds a record — see {!Wal} for the crash-recovery
    story. *)
val create :
  ?precommit:bool ->
  ?equivocate:bool ->
  ?lso:bool ->
  ?wal:Wal.t ->
  Message.t Env.t ->
  t

val start : t -> unit
val handle : t -> src:int -> Message.t -> unit

(** {2 Introspection (tests, metrics)} *)

val current_view : t -> int
val lock : t -> Cert.t
val timeout_view : t -> int
val committed : t -> int
val commit_log : t -> Bft_chain.Commit_log.t
val store : t -> Bft_chain.Block_store.t

(** First-class protocol modules for the harness. *)
module Protocol : Bft_types.Protocol_intf.S with type msg = Message.t and type node = t

module Commit_protocol :
  Bft_types.Protocol_intf.S with type msg = Message.t and type node = t

(** The leader-speaks-once variant of Pipelined Moonshot (ablation). *)
module Lso_protocol :
  Bft_types.Protocol_intf.S with type msg = Message.t and type node = t
