type t = Opt | Normal | Fallback

let equal a b =
  match (a, b) with
  | Opt, Opt | Normal, Normal | Fallback, Fallback -> true
  | (Opt | Normal | Fallback), _ -> false

let to_tag = function Opt -> 0 | Normal -> 1 | Fallback -> 2
let compare a b = Int.compare (to_tag a) (to_tag b)

let pp ppf = function
  | Opt -> Format.pp_print_string ppf "opt"
  | Normal -> Format.pp_print_string ppf "normal"
  | Fallback -> Format.pp_print_string ppf "fallback"
