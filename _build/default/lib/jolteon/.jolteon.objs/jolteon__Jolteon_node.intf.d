lib/jolteon/jolteon_node.mli: Bft_chain Bft_types Env Jolteon_msg Moonshot
