lib/jolteon/jolteon_msg.mli: Bft_types Block Format Hash Moonshot
