lib/jolteon/jolteon_msg.ml: Bft_types Block Format Hash List Moonshot Option Payload Wire_size
