lib/jolteon/jolteon_node.ml: Bft_crypto Bft_types Block Env Hashtbl Jolteon_msg List Moonshot Option Payload
