lib/hotstuff/hotstuff_node.mli: Bft_types Env Jolteon
