lib/hotstuff/hotstuff_node.ml: Bft_types Env Jolteon
