open Bft_types

type t = {
  kv : Kv_store.t;
  mutable height : int;
  digests : (int, Hash.t) Hashtbl.t;
}

let create () =
  { kv = Kv_store.create (); height = 0; digests = Hashtbl.create 64 }

let apply_block t (b : Block.t) =
  if b.Block.height <> t.height + 1 then
    invalid_arg
      (Printf.sprintf "Ledger.apply_block: got height %d, expected %d"
         b.Block.height (t.height + 1));
  List.iter (Kv_store.apply t.kv) (Command.of_payload b.Block.payload);
  t.height <- b.Block.height;
  Hashtbl.replace t.digests t.height (Kv_store.digest t.kv)

let digest_at t height =
  if height = 0 then Some (Kv_store.digest (Kv_store.create ()))
  else Hashtbl.find_opt t.digests height

let height t = t.height
let store t = t.kv
let digest t = Kv_store.digest t.kv
let commands_applied t = Kv_store.applied t.kv
