type t = { table : (string, int) Hashtbl.t; mutable applied : int }

let create () = { table = Hashtbl.create 64; applied = 0 }

let apply t cmd =
  t.applied <- t.applied + 1;
  match (cmd : Command.t) with
  | Command.Set { key; value } -> Hashtbl.replace t.table key value
  | Command.Incr { key; by } ->
      let current = Option.value ~default:0 (Hashtbl.find_opt t.table key) in
      Hashtbl.replace t.table key (current + by)
  | Command.Del { key } -> Hashtbl.remove t.table key

let find t key = Hashtbl.find_opt t.table key
let size t = Hashtbl.length t.table
let applied t = t.applied

let bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let digest t =
  let fields =
    List.concat_map
      (fun (k, v) ->
        [ Int64.of_int (Hashtbl.hash k); Int64.of_int v ])
      (bindings t)
  in
  Bft_types.Hash.of_fields (Int64.of_int t.applied :: fields)
