open Bft_types

type t =
  | Set of { key : string; value : int }
  | Incr of { key : string; by : int }
  | Del of { key : string }

let encoded_size = Payload.item_size

(* A cheap deterministic stream: splitmix-style mixing of (payload id,
   command index). *)
let mix a b =
  let h = Hash.of_fields [ Int64.of_int a; Int64.of_int b ] in
  Hash.to_int h land max_int

let key_space = 256

let command_at ~payload_id index =
  let r = mix payload_id index in
  let key = Printf.sprintf "k%03d" (r mod key_space) in
  match r / key_space mod 4 with
  | 0 | 1 -> Set { key; value = r / 1024 mod 1_000_000 }
  | 2 -> Incr { key; by = (r / 1024 mod 100) + 1 }
  | _ -> Del { key }

let of_payload (p : Payload.t) =
  List.init (Payload.item_count p) (command_at ~payload_id:p.Payload.id)

let equal a b =
  match (a, b) with
  | Set { key = k1; value = v1 }, Set { key = k2; value = v2 } ->
      String.equal k1 k2 && v1 = v2
  | Incr { key = k1; by = b1 }, Incr { key = k2; by = b2 } ->
      String.equal k1 k2 && b1 = b2
  | Del { key = k1 }, Del { key = k2 } -> String.equal k1 k2
  | (Set _ | Incr _ | Del _), _ -> false

let pp ppf = function
  | Set { key; value } -> Format.fprintf ppf "set %s = %d" key value
  | Incr { key; by } -> Format.fprintf ppf "incr %s by %d" key by
  | Del { key } -> Format.fprintf ppf "del %s" key
