lib/app/kv_store.ml: Bft_types Command Hashtbl Int64 List Option String
