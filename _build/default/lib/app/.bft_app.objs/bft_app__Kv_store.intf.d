lib/app/kv_store.mli: Bft_types Command
