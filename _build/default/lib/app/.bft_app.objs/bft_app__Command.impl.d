lib/app/command.ml: Bft_types Format Hash Int64 List Payload Printf String
