lib/app/ledger.mli: Bft_types Kv_store
