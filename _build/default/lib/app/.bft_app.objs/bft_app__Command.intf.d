lib/app/command.mli: Bft_types Format
