lib/app/client.mli: Format
