lib/app/ledger.ml: Bft_types Block Command Hash Hashtbl Kv_store List Printf
