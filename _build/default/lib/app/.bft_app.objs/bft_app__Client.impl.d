lib/app/client.ml: Bft_stats Float Format List Option
