type block_timeline = (float * float option) list

type stats = {
  committed_blocks : int;
  avg_block_period_ms : float;
  avg_commit_latency_ms : float;
  avg_queueing_ms : float;
  avg_end_to_end_ms : float;
  lost_blocks : int;
}

let analyze timeline =
  let committed =
    List.filter_map
      (fun (c, m) -> Option.map (fun m -> (c, m)) m)
      (List.sort (fun (a, _) (b, _) -> Float.compare a b) timeline)
  in
  let lost = List.length timeline - List.length committed in
  match committed with
  | [] | [ _ ] -> invalid_arg "Client.analyze: need at least two committed blocks"
  | (first_c, _) :: _ ->
      let n = List.length committed in
      let last_c, _ = List.nth committed (n - 1) in
      let period = (last_c -. first_c) /. float_of_int (n - 1) in
      let commit_lat =
        Bft_stats.Descriptive.mean (List.map (fun (c, m) -> m -. c) committed)
      in
      (* Transactions arrive uniformly; those bound for a given block waited
         half a period on average. *)
      let queueing = period /. 2. in
      {
        committed_blocks = n;
        avg_block_period_ms = period;
        avg_commit_latency_ms = commit_lat;
        avg_queueing_ms = queueing;
        avg_end_to_end_ms = queueing +. commit_lat;
        lost_blocks = lost;
      }

let pp ppf s =
  Format.fprintf ppf
    "blocks=%d period=%.1fms commit=%.1fms queue=%.1fms end-to-end=%.1fms lost=%d"
    s.committed_blocks s.avg_block_period_ms s.avg_commit_latency_ms
    s.avg_queueing_ms s.avg_end_to_end_ms s.lost_blocks
