type stats = {
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

type 'msg t = {
  n : int;
  network : Network.t;
  queue : (unit -> unit) Event_queue.t;
  handlers : (src:int -> 'msg -> unit) array;
  node_rngs : Rng.t array;
  net_rng : Rng.t;
  egress_free : float array;
  cpu_free : float array;
  msg_size : 'msg -> int;
  cpu_cost : ('msg -> float) option;
  mutable clock : float;
  mutable filter : src:int -> dst:int -> now:float -> bool;
  mutable tap : time:float -> src:int -> dst:int -> 'msg -> unit;
  stats : stats;
}

let create ~n ~network ~seed ~msg_size ?cpu_cost () =
  if n < 1 then invalid_arg "Engine.create: n < 1";
  let root = Rng.create seed in
  {
    n;
    network;
    queue = Event_queue.create ();
    handlers = Array.make n (fun ~src:_ _ -> ());
    node_rngs = Array.init n (fun _ -> Rng.split root);
    net_rng = Rng.split root;
    egress_free = Array.make n 0.;
    cpu_free = Array.make n 0.;
    msg_size;
    cpu_cost;
    clock = 0.;
    filter = (fun ~src:_ ~dst:_ ~now:_ -> true);
    tap = (fun ~time:_ ~src:_ ~dst:_ _ -> ());
    stats = { events_processed = 0; messages_sent = 0; bytes_sent = 0. };
  }

let set_handler t i h = t.handlers.(i) <- h
let set_link_filter t f = t.filter <- f
let set_delivery_tap t f = t.tap <- f
let now t = t.clock
let n t = t.n
let node_rng t i = t.node_rngs.(i)

let deliver t ~src ~dst msg =
  t.tap ~time:t.clock ~src ~dst msg;
  t.handlers.(dst) ~src msg

(* Run the message through [dst]'s serial CPU queue before handing it to the
   handler; invoked at the message's network arrival time. *)
let process t ~src ~dst msg =
  match t.cpu_cost with
  | None -> deliver t ~src ~dst msg
  | Some cost ->
      let start = Float.max t.clock t.cpu_free.(dst) in
      let finish = start +. cost msg in
      t.cpu_free.(dst) <- finish;
      if finish <= t.clock then deliver t ~src ~dst msg
      else Event_queue.push t.queue ~time:finish (fun () -> deliver t ~src ~dst msg)

let send t ~src ~dst msg =
  let size = t.msg_size msg in
  t.stats.messages_sent <- t.stats.messages_sent + 1;
  t.stats.bytes_sent <- t.stats.bytes_sent +. float_of_int size;
  if dst = src then
    (* Local hand-off: no serialization, no propagation. *)
    Event_queue.push t.queue ~time:t.clock (fun () -> deliver t ~src ~dst msg)
  else if t.filter ~src ~dst ~now:t.clock then begin
    let egress_end, arrival =
      Network.delivery t.network t.net_rng ~now:t.clock
        ~egress_free:t.egress_free.(src) ~src ~dst ~size
    in
    t.egress_free.(src) <- egress_end;
    Event_queue.push t.queue ~time:arrival (fun () -> process t ~src ~dst msg);
    let dup = t.network.Network.duplicate_prob in
    if dup > 0. && Rng.float t.net_rng 1. < dup then begin
      (* Network-level duplication: the copy trails the original slightly. *)
      let lag = Rng.float t.net_rng (0.5 *. t.network.Network.delta) in
      Event_queue.push t.queue ~time:(arrival +. lag) (fun () ->
          process t ~src ~dst msg)
    end
  end

let multicast t ~src msg =
  send t ~src ~dst:src msg;
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let set_timer t delay f =
  if delay < 0. then invalid_arg "Engine.set_timer: negative delay";
  let cancelled = ref false in
  Event_queue.push t.queue ~time:(t.clock +. delay) (fun () ->
      if not !cancelled then f ());
  fun () -> cancelled := true

let schedule_at t time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let run t ~until =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | None -> ()
    | Some time when time > until -> t.clock <- until
    | Some _ ->
        (match Event_queue.pop t.queue with
        | None -> ()
        | Some (time, f) ->
            t.clock <- time;
            t.stats.events_processed <- t.stats.events_processed + 1;
            f ());
        loop ()
  in
  loop ()

let stats t = t.stats
