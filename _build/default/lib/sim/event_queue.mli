(** Priority queue of timestamped events.

    Events pop in nondecreasing time order; events with equal timestamps pop
    in insertion (FIFO) order, which keeps simulations fully deterministic. *)

type 'a t

val create : unit -> 'a t

(** [push t ~time ev] schedules [ev].  Raises [Invalid_argument] on a
    non-finite time. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option
val is_empty : 'a t -> bool
val size : 'a t -> int
