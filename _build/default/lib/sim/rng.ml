type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  (* 53 random bits into [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t (float_of_int bound))

let gaussian t ~mean ~std =
  let u1 = Float.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let u = Float.max 1e-12 (float t 1.0) in
  -.mean *. log u
