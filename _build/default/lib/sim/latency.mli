(** Link propagation-latency models.

    Latencies are one-way, in milliseconds, sampled per message.  The
    [Matrix] model reproduces the paper's WAN: a table of observed
    inter-region latencies (Table II, 90th percentile) plus a region
    assignment; samples are drawn so that the table value sits near the 90th
    percentile of the sampled distribution. *)

type t =
  | Uniform of { base : float; jitter : float }
      (** [base + U[0, jitter)] for every ordered pair. *)
  | Matrix of {
      table : float array array;  (** [table.(src_region).(dst_region)]. *)
      region_of : int -> int;  (** Node id to region index. *)
    }

(** [sample t rng ~src ~dst] draws the propagation latency for one message
    from [src] to [dst]. *)
val sample : t -> Rng.t -> src:int -> dst:int -> float

(** Largest latency the model can produce (used to sanity-check Delta). *)
val upper_bound : t -> float
