type t =
  | Uniform of { base : float; jitter : float }
  | Matrix of { table : float array array; region_of : int -> int }

(* For the matrix model the table entry is the 90th percentile of observed
   latency.  We sample uniformly in [0.75 p90, 1.05 p90]: the 90th percentile
   of that distribution is 1.02 p90, i.e. within 2% of the table value. *)
let matrix_low = 0.75
let matrix_high = 1.05

let sample t rng ~src ~dst =
  match t with
  | Uniform { base; jitter } ->
      if jitter <= 0. then base else base +. Rng.float rng jitter
  | Matrix { table; region_of } ->
      let p90 = table.(region_of src).(region_of dst) in
      p90 *. (matrix_low +. Rng.float rng (matrix_high -. matrix_low))

let upper_bound = function
  | Uniform { base; jitter } -> base +. Float.max 0. jitter
  | Matrix { table; _ } ->
      let worst = ref 0. in
      Array.iter (fun row -> Array.iter (fun v -> worst := Float.max !worst v) row) table;
      !worst *. matrix_high
