lib/sim/engine.mli: Network Rng
