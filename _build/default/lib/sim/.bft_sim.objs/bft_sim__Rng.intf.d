lib/sim/rng.mli:
