lib/sim/network.ml: Float Latency Rng
