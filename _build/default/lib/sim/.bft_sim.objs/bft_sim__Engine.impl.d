lib/sim/engine.ml: Array Event_queue Float Network Rng
