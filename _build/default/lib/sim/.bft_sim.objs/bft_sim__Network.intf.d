lib/sim/network.mli: Latency Rng
