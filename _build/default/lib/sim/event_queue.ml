(* Array-backed binary min-heap keyed by (time, sequence number).  The
   sequence number breaks ties so same-time events are FIFO. *)

type 'a cell = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 64 None; size = 0; next_seq = 0 }

let cell_at t i =
  match t.heap.(i) with
  | Some c -> c
  | None -> assert false

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) None in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (cell_at t i) (cell_at t parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt (cell_at t l) (cell_at t !smallest) then smallest := l;
  if r < t.size && lt (cell_at t r) (cell_at t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time value =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- Some { time; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = cell_at t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some (cell_at t 0).time
let is_empty t = t.size = 0
let size t = t.size
