lib/stats/table.ml: Float Format List Printf String
