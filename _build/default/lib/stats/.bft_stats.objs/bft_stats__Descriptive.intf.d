lib/stats/descriptive.mli:
