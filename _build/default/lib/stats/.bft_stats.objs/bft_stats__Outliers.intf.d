lib/stats/outliers.mli:
