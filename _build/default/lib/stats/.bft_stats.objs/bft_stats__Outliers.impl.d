lib/stats/outliers.ml: Descriptive List
