type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let print ppf t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map (fun _ -> 0) t.headers)
      all
  in
  let print_row row =
    List.iter2
      (fun w c -> Format.fprintf ppf "%-*s  " w c)
      widths row;
    Format.fprintf ppf "@."
  in
  print_row t.headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let cell v =
  if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let cell_int = string_of_int
