let require_nonempty = function
  | [] -> invalid_arg "Descriptive: empty sample"
  | xs -> xs

let sum xs = List.fold_left ( +. ) 0. (require_nonempty xs)
let mean xs = sum xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
  sqrt (sq /. float_of_int (List.length xs))

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p not in [0,100]";
  let sorted = List.sort Float.compare (require_nonempty xs) in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let median xs = percentile 50. xs
let min xs = List.fold_left Float.min Float.infinity (require_nonempty xs)
let max xs = List.fold_left Float.max Float.neg_infinity (require_nonempty xs)
