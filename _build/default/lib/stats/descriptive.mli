(** Descriptive statistics over float samples. *)

(** All of these raise [Invalid_argument] on an empty list. *)

val mean : float list -> float
val stddev : float list -> float  (** Population standard deviation. *)

val median : float list -> float

(** [percentile p xs] with [p] in [0, 100]; linear interpolation between
    order statistics. *)
val percentile : float -> float list -> float

val min : float list -> float
val max : float list -> float
val sum : float list -> float
