(** Outlier detection for experiment aggregates.

    Table III of the paper reports averages "outliers removed": the 200-node
    empty/1.8 kB configurations behaved anomalously (about 3x throughput and
    a quarter of the latency of Jolteon versus roughly 1.5x / half
    elsewhere).  We reproduce the same treatment with a standard IQR fence
    over per-configuration ratios. *)

(** [iqr_filter ?k xs] keeps samples within
    [Q1 - k * IQR, Q3 + k * IQR] (Tukey's fences, default [k = 1.5]).
    Returns [(kept, removed)]. *)
val iqr_filter : ?k:float -> float list -> float list * float list

(** [iqr_filter_on ?k ~value xs] — same, keying each element by [value]. *)
val iqr_filter_on : ?k:float -> value:('a -> float) -> 'a list -> 'a list * 'a list
