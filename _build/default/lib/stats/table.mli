(** Plain-text table rendering for benchmark output. *)

type t

(** [create headers] — column count is fixed by the header row. *)
val create : string list -> t

(** Append a row.  Raises [Invalid_argument] on a column-count mismatch. *)
val add_row : t -> string list -> unit

(** Render with columns padded to their widest cell. *)
val print : Format.formatter -> t -> unit

(** Shorthand for formatting float cells. *)
val cell : float -> string

val cell_int : int -> string
