let iqr_filter_on ?(k = 1.5) ~value xs =
  match xs with
  | [] | [ _ ] | [ _; _ ] -> (xs, [])
  | _ ->
      let vs = List.map value xs in
      let q1 = Descriptive.percentile 25. vs in
      let q3 = Descriptive.percentile 75. vs in
      let iqr = q3 -. q1 in
      let lo = q1 -. (k *. iqr) and hi = q3 +. (k *. iqr) in
      List.partition
        (fun x ->
          let v = value x in
          v >= lo && v <= hi)
        xs

let iqr_filter ?k xs = iqr_filter_on ?k ~value:(fun x -> x) xs
