(* Benchmark harness reproducing every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe                 # everything, scaled down
     dune exec bench/main.exe -- table3       # one experiment
     dune exec bench/main.exe -- fig9 --full  # paper-scale parameters

   Experiments: table1 table2 table3 fig6 fig7 fig8 fig9 ablations micro all *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table3|fig6|fig7|fig8|fig9|fairness|ablations|micro|all] [--full]";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let targets =
    match List.filter (fun a -> a <> "--full") args with
    | [] -> [ "all" ]
    | ts -> ts
  in
  let scale =
    if full then Experiments.full_scale else Experiments.default_scale
  in
  let dispatch = function
    | "table1" ->
        Experiments.table1 ();
        Experiments.table1_empirical ()
    | "table2" -> Experiments.table2 ()
    | "table3" -> Experiments.table3 scale
    | "fig6" -> Experiments.fig6 scale
    | "fig7" -> Experiments.fig7 scale
    | "fig8" -> Experiments.fig8 scale
    | "fig9" -> Experiments.fig9 scale
    | "fairness" -> Experiments.fairness scale
    | "ablations" ->
        Experiments.ablation_bandwidth scale;
        Experiments.ablation_block_period scale;
        Experiments.ablation_lso scale
    | "micro" -> Micro.run ()
    | "all" ->
        Experiments.table1 ();
        Experiments.table1_empirical ();
        Experiments.table2 ();
        Experiments.table3 scale;
        Experiments.fig6 scale;
        Experiments.fig7 scale;
        Experiments.fig8 scale;
        Experiments.fig9 scale;
        Experiments.fairness scale;
        Experiments.ablation_bandwidth scale;
        Experiments.ablation_block_period scale;
        Experiments.ablation_lso scale;
        Micro.run ()
    | other ->
        Format.printf "unknown experiment %S@." other;
        usage ()
  in
  List.iter dispatch targets
