bench/experiments.ml: Bft_runtime Bft_stats Bft_types Bft_workload Config Format Harness Hashtbl List Metrics Moonshot Printf Protocol_kind String
