bench/main.mli:
