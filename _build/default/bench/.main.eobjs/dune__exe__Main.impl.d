bench/main.ml: Array Experiments Format List Micro Sys
