bench/micro.ml: Analyze Bechamel Benchmark Bft_chain Bft_crypto Bft_sim Bft_types Block Format Hashtbl Instance List Measure Payload Staged Test Time Toolkit
