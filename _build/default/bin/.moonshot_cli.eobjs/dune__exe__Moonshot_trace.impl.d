bin/moonshot_trace.ml: Bft_sim Bft_types Block Env Format List Moonshot Payload Sys Validator_set
