bin/moonshot_trace.mli:
