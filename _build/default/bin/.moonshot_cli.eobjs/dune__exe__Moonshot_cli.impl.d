bin/moonshot_cli.ml: Arg Bft_runtime Bft_stats Bft_workload Cmd Cmdliner Config Format Harness Logs Metrics Moonshot Printf Protocol_kind Term
