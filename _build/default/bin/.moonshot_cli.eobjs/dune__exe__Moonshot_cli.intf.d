bin/moonshot_cli.mli:
