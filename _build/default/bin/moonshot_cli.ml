(* Command-line front end: run any of the four protocols on a configurable
   simulated network and print the paper's metrics.

     dune exec bin/moonshot_cli.exe -- run --protocol CM -n 50 --payload 18000
     dune exec bin/moonshot_cli.exe -- run -p J --schedule WJ --faults 13 -n 40
     dune exec bin/moonshot_cli.exe -- table1
*)

open Cmdliner
open Bft_runtime

let protocol_conv =
  let parse s =
    match Protocol_kind.of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (expected SM, PM, CM, J or long names)" s))
  in
  let print ppf p = Format.pp_print_string ppf (Protocol_kind.name p) in
  Arg.conv (parse, print)

let schedule_conv =
  let parse s =
    match Bft_workload.Schedules.of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown schedule %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Bft_workload.Schedules.name s) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Protocol_kind.Commit_moonshot
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to run: SM, PM, CM or J (Jolteon baseline).")

let nodes =
  Arg.(
    value & opt int 10
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let payload =
  Arg.(
    value & opt int 0
    & info [ "payload" ] ~docv:"BYTES" ~doc:"Block payload size in bytes.")

let duration =
  Arg.(
    value & opt float 30.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")

let delta =
  Arg.(
    value & opt float 500.
    & info [ "delta" ] ~docv:"MS" ~doc:"Message-delay bound Delta, ms.")

let faults =
  Arg.(
    value & opt int 0
    & info [ "f"; "faults" ] ~docv:"F"
        ~doc:"Number of silent Byzantine nodes (at most (n-1)/3).")

let schedule =
  Arg.(
    value
    & opt schedule_conv Bft_workload.Schedules.Round_robin
    & info [ "schedule" ] ~docv:"SCHED"
        ~doc:"Leader schedule: round-robin, B, WM or WJ.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let gst =
  Arg.(
    value & opt float 0.
    & info [ "gst" ] ~docv:"SECONDS"
        ~doc:"Global stabilization time; before it, messages may be delayed \
              adversarially.")

let uniform_latency =
  Arg.(
    value
    & opt (some (pair ~sep:',' float float)) None
    & info [ "uniform-latency" ] ~docv:"BASE,JITTER"
        ~doc:
          "Replace the AWS WAN latency matrix with a uniform one-way latency \
           of BASE + U[0,JITTER) ms.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log per-run details to stderr.")

let run_cmd =
  let run verbose protocol n payload duration delta faults schedule seed gst
      uniform_latency =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let latency, bandwidth =
      match uniform_latency with
      | Some (base, jitter) -> (Config.Uniform { base; jitter }, None)
      | None -> (Config.Wan, Some Bft_workload.Regions.bandwidth_bps)
    in
    let cfg =
      {
        (Config.default protocol ~n) with
        Config.payload_bytes = payload;
        duration_ms = duration *. 1000.;
        delta_ms = delta;
        f_actual = faults;
        schedule;
        seed;
        gst_ms = gst *. 1000.;
        pre_gst_extra_ms = (if gst > 0. then 4. *. delta else 0.);
        latency;
        bandwidth_bps = bandwidth;
      }
    in
    let r = Harness.run cfg in
    let m = r.Harness.metrics in
    Format.printf "config          : %a@." Config.pp cfg;
    Format.printf "blocks committed: %d (%.2f blocks/s)@."
      m.Metrics.committed_blocks m.Metrics.blocks_per_sec;
    Format.printf "avg latency     : %.1f ms@." m.Metrics.avg_latency_ms;
    if m.Metrics.latencies_ms <> [] then
      Format.printf "latency p50/p95 : %.1f / %.1f ms@."
        (Bft_stats.Descriptive.percentile 50. m.Metrics.latencies_ms)
        (Bft_stats.Descriptive.percentile 95. m.Metrics.latencies_ms);
    Format.printf "transfer rate   : %.3f MB/s@."
      (m.Metrics.transfer_rate_bps /. 1e6);
    Format.printf "messages        : %d (%.1f MB)@." r.Harness.messages_sent
      (r.Harness.bytes_sent /. 1e6);
    Format.printf "safety          : OK@."
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes $ payload $ duration $ delta
      $ faults $ schedule $ seed $ gst $ uniform_latency)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol on a simulated network")
    term

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the theoretical comparison (paper Table I)")
    Term.(const (fun () -> Moonshot.Theory.print Format.std_formatter) $ const ())

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the AWS latency matrix (paper Table II)")
    Term.(
      const (fun () -> Bft_workload.Regions.print_table Format.std_formatter)
      $ const ())

let () =
  let info =
    Cmd.info "moonshot" ~version:"1.0.0"
      ~doc:
        "Moonshot chain-based rotating-leader BFT SMR (DSN 2024) -- simulated \
         evaluation harness"
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; table1_cmd; table2_cmd ]))
