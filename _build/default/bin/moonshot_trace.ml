(* Message-flow tracer: runs a few views of Pipelined Moonshot on a tiny
   exact-hop network and prints the delivery timeline, making Figure 2 of
   the paper observable — optimistic proposals (for view v+1) are in flight
   while votes for view v are still propagating, which is what buys the
   one-hop block period.

     dune exec bin/moonshot_trace.exe [-- horizon_ms]
*)

open Bft_types

let n = 4
let hop = 10.

let () =
  let horizon =
    match Sys.argv with
    | [| _; h |] -> float_of_string h
    | _ -> 65.
  in
  let network =
    Bft_sim.Network.make
      ~latency:(Bft_sim.Latency.Uniform { base = hop; jitter = 0. })
      ~delta:50. ()
  in
  let engine =
    Bft_sim.Engine.create ~n ~network ~seed:1
      ~msg_size:Moonshot.Message.size ()
  in
  (* Print every delivery except the sender's own loop-back. *)
  Bft_sim.Engine.set_delivery_tap engine (fun ~time ~src ~dst msg ->
      if src <> dst then
        Format.printf "%6.1f ms  %d -> %d  %a@." time src dst
          Moonshot.Message.pp msg);
  let validators = Validator_set.make n in
  let nodes =
    List.map
      (fun id ->
        let env =
          {
            Env.id;
            validators;
            delta = 50.;
            now = (fun () -> Bft_sim.Engine.now engine);
            send = (fun dst msg -> Bft_sim.Engine.send engine ~src:id ~dst msg);
            multicast = (fun msg -> Bft_sim.Engine.multicast engine ~src:id msg);
            set_timer = (fun d f -> Bft_sim.Engine.set_timer engine d f);
            leader_of = (fun view -> (view - 1) mod n);
            make_payload = (fun ~view -> Payload.make ~id:view ~size_bytes:0);
            on_commit =
              (fun b ->
                Format.printf "%6.1f ms  node %d COMMITS %a@."
                  (Bft_sim.Engine.now engine) id Block.pp b);
            on_propose = (fun _ -> ());
          }
        in
        let node = Moonshot.Pipelined_node.create env in
        Bft_sim.Engine.set_handler engine id
          (Moonshot.Pipelined_node.handle node);
        node)
      (List.init n (fun i -> i))
  in
  Format.printf
    "Pipelined Moonshot, %d nodes, every message exactly %.0f ms.@.\
     Leader of view v is node (v-1) mod %d.  Watch opt-proposals for view@.\
     v+1 overlap votes for view v (Figure 2), and commits land 3 hops after@.\
     a block's proposal.@.@."
    n hop n;
  List.iter Moonshot.Pipelined_node.start nodes;
  Bft_sim.Engine.run engine ~until:horizon
